// Unit tests for the trace-parsing library on synthetic streams: block
// reconstruction and interleaving, marker handling, nesting, idle
// accounting, and the defensive checks — independent of any real system run.
#include "trace/parser.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace wrl {
namespace {

constexpr uint32_t kKeyA = 0x10000010;  // Block with 2 instrs, no mem ops.
constexpr uint32_t kKeyB = 0x10000040;  // Block with 3 instrs, load@1.
constexpr uint32_t kKeyC = 0x10000080;  // Block with 4 instrs, store@0, load@2.
constexpr uint32_t kKeyIdle = 0x10000100;  // Idle-start block, 2 instrs.
constexpr uint32_t kKeyStop = 0x10000140;  // Idle-stop block, 1 instr.
constexpr uint32_t kKeyKA = 0x10000180;    // Kernel block, 2 instrs.
constexpr uint32_t kKeyKB = 0x100001c0;    // Kernel block, 3 instrs, load@1.

TraceInfoTable MakeTable() {
  TraceInfoTable table;
  table.Add(kKeyA, {0x00400000, 2, 0, {}, 0});
  table.Add(kKeyB, {0x00400100, 3, 0, {{1, false, 4}}, 0});
  table.Add(kKeyC, {0x00400200, 4, 0, {{0, true, 4}, {2, false, 1}}, 0});
  table.Add(kKeyIdle, {0x80002000, 2, kBlockIdleStart, {}, 0});
  table.Add(kKeyStop, {0x80002100, 1, kBlockIdleStop, {}, 0});
  table.Add(kKeyKA, {0x80003000, 2, 0, {}, 0});
  table.Add(kKeyKB, {0x80003100, 3, 0, {{1, false, 4}}, 0});
  return table;
}

struct Collected {
  std::vector<TraceRef> refs;
  TraceParserStats stats;
  std::vector<std::string> errors;
};

Collected Parse(const TraceInfoTable& table, const std::vector<uint32_t>& words,
                uint8_t initial = 1, const TraceInfoTable* kernel = nullptr) {
  Collected out;
  TraceParser parser(kernel ? kernel : &table);
  parser.SetUserTable(1, &table);
  parser.SetUserTable(2, &table);
  parser.SetInitialContext(initial);
  parser.SetRefSink([&](const TraceRef& r) { out.refs.push_back(r); });
  parser.Feed(words);
  parser.Finish();
  out.stats = parser.stats();
  out.errors = parser.errors();
  return out;
}

TEST(TraceParser, DatalessBlockEmitsFetches) {
  TraceInfoTable table = MakeTable();
  Collected c = Parse(table, {kKeyA});
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  ASSERT_EQ(c.refs.size(), 2u);
  EXPECT_EQ(c.refs[0].kind, TraceRef::kIfetch);
  EXPECT_EQ(c.refs[0].addr, 0x00400000u);
  EXPECT_EQ(c.refs[1].addr, 0x00400004u);
}

TEST(TraceParser, MemOpsInterleaveAtStaticPositions) {
  TraceInfoTable table = MakeTable();
  Collected c = Parse(table, {kKeyC, 0x00500000, 0x00500010});
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  // Expected order: fetch0, store, fetch1, fetch2, load, fetch3.
  ASSERT_EQ(c.refs.size(), 6u);
  EXPECT_EQ(c.refs[0].kind, TraceRef::kIfetch);
  EXPECT_EQ(c.refs[1].kind, TraceRef::kStore);
  EXPECT_EQ(c.refs[1].addr, 0x00500000u);
  EXPECT_EQ(c.refs[2].kind, TraceRef::kIfetch);
  EXPECT_EQ(c.refs[3].kind, TraceRef::kIfetch);
  EXPECT_EQ(c.refs[4].kind, TraceRef::kLoad);
  EXPECT_EQ(c.refs[4].addr, 0x00500010u);
  EXPECT_EQ(c.refs[4].bytes, 1u);
  EXPECT_EQ(c.refs[5].kind, TraceRef::kIfetch);
}

TEST(TraceParser, KernelEnterSuspendsPartialBlock) {
  TraceInfoTable table = MakeTable();
  // Block B's load is interrupted by a kernel section, then completes.
  std::vector<uint32_t> words = {
      kKeyB,
      MakeMarker(kMarkKernelEnter), (1u << 8) | 0,  // pid 1, exc Int
      kKeyKA,                                       // kernel handler block
      MakeMarker(kMarkKernelExit), 1,               // back to pid 1
      0x00600000,                                   // B's pending load
  };
  Collected c = Parse(table, words);
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  // B: fetch0, fetch1 (awaiting data) | kernel A: 2 fetches | load, fetch2.
  ASSERT_EQ(c.refs.size(), 6u);
  EXPECT_FALSE(c.refs[0].kernel);
  EXPECT_TRUE(c.refs[2].kernel);
  EXPECT_TRUE(c.refs[3].kernel);
  EXPECT_EQ(c.refs[4].kind, TraceRef::kLoad);
  EXPECT_EQ(c.refs[4].addr, 0x00600000u);
  EXPECT_FALSE(c.refs[4].kernel);
}

TEST(TraceParser, NestedKernelSectionsStack) {
  TraceInfoTable table = MakeTable();
  std::vector<uint32_t> words = {
      MakeMarker(kMarkKernelEnter), (1u << 8) | 8,    // user 1 -> kernel
      kKeyKB,                                         // kernel block, awaiting data
      MakeMarker(kMarkKernelEnter), 0xff00,           // nested (kernel -> kernel)
      kKeyKA,
      MakeMarker(kMarkKernelExit), 0xff,              // pop to outer kernel
      0x80004000,                                     // KB's load completes
      MakeMarker(kMarkKernelExit), 1,                 // back to user 1
      kKeyA,
  };
  Collected c = Parse(table, words, 1);
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  EXPECT_EQ(c.stats.blocks, 3u);
  EXPECT_EQ(c.stats.loads, 1u);
  EXPECT_EQ(c.stats.user_ifetches, 2u);   // Final A in user context.
  EXPECT_EQ(c.stats.kernel_ifetches, 5u); // B(3) + nested A(2).
}

TEST(TraceParser, ContextSwitchSeparatesProcesses) {
  TraceInfoTable table = MakeTable();
  std::vector<uint32_t> words = {
      MakeMarker(kMarkKernelEnter), (1u << 8) | 0,
      MakeMarker(kMarkContextSwitch), 2,
      MakeMarker(kMarkKernelExit), 2,  // resume pid 2
      kKeyA,
      MakeMarker(kMarkKernelEnter), (2u << 8) | 8,
      MakeMarker(kMarkKernelExit), 1,  // back to pid 1
      kKeyB, 0x00700000,
  };
  Collected c = Parse(table, words, 1);
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  // kKeyA ran as pid 2, kKeyB as pid 1.
  EXPECT_EQ(c.refs[0].pid, 2u);
  EXPECT_EQ(c.refs.back().pid, 1u);
}

TEST(TraceParser, IdleFlagsDriveCounting) {
  TraceInfoTable table = MakeTable();
  std::vector<uint32_t> words = {kKeyIdle, kKeyIdle, kKeyStop, kKeyIdle};
  Collected c = Parse(table, words, kKernelPid, &table);
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  // Two idle blocks (2 instrs each) count; the stop block and the restart
  // count per their flags: idle resumes on the next IdleStart block.
  EXPECT_EQ(c.stats.idle_instructions, 2u + 2u + 2u);
}

TEST(TraceParser, IdleStateSuspendsAcrossKernelNesting) {
  TraceInfoTable table = MakeTable();
  std::vector<uint32_t> words = {
      kKeyIdle,                             // idle on (2 idle instrs)
      MakeMarker(kMarkKernelEnter), 0xff08, // nested handler
      kKeyKA,                               // handler code: NOT idle
      MakeMarker(kMarkKernelExit), 0xff,
      kKeyIdle,                             // idle continues
  };
  Collected c = Parse(table, words, kKernelPid, &table);
  ASSERT_TRUE(c.errors.empty()) << c.errors.front();
  EXPECT_EQ(c.stats.idle_instructions, 4u);
}

TEST(TraceParser, UnknownKeyIsFlagged) {
  TraceInfoTable table = MakeTable();
  Collected c = Parse(table, {0x12345678});
  EXPECT_EQ(c.stats.validation_errors, 1u);
}

TEST(TraceParser, MissingDataWordIsFlagged) {
  TraceInfoTable table = MakeTable();
  // B's data word was dropped: the following key is consumed as its data
  // (that one word is inherently indistinguishable), and the stream then
  // desynchronizes at the next word — which the membership check catches.
  Collected c = Parse(table, {kKeyB, kKeyA, 0x00500000});
  EXPECT_GE(c.stats.validation_errors, 1u);
}

TEST(TraceParser, TruncatedBlockFlaggedAtFinish) {
  TraceInfoTable table = MakeTable();
  Collected c = Parse(table, {kKeyB});
  EXPECT_GE(c.stats.validation_errors, 1u);
}

TEST(TraceParser, TruncatedMarkerFlaggedAtFinish) {
  TraceInfoTable table = MakeTable();
  Collected c = Parse(table, {MakeMarker(kMarkKernelEnter)});
  EXPECT_GE(c.stats.validation_errors, 1u);
}

TEST(TraceParser, KernelFetchOutsideKernelSpaceFlagged) {
  TraceInfoTable table;
  table.Add(0x80001000, {0x00400000, 1, 0, {}, 0});  // Kernel block at a user address.
  Collected c = Parse(table, {0x80001000}, kKernelPid, &table);
  EXPECT_GE(c.stats.validation_errors, 1u);
}

TEST(TraceParser, IncrementalFeedMatchesBatch) {
  TraceInfoTable table = MakeTable();
  std::vector<uint32_t> words = {kKeyC, 0x00500000, MakeMarker(kMarkKernelEnter),
                                 (1u << 8) | 0,    kKeyA,      MakeMarker(kMarkKernelExit),
                                 1,                0x00500010, kKeyA};
  Collected batch = Parse(table, words);
  // Feed one word at a time.
  Collected incremental;
  {
    TraceParser parser(&table);
    parser.SetUserTable(1, &table);
    parser.SetInitialContext(1);
    parser.SetRefSink([&](const TraceRef& r) { incremental.refs.push_back(r); });
    for (uint32_t w : words) {
      parser.Feed(&w, 1);
    }
    parser.Finish();
    incremental.stats = parser.stats();
  }
  ASSERT_EQ(batch.refs.size(), incremental.refs.size());
  for (size_t i = 0; i < batch.refs.size(); ++i) {
    EXPECT_EQ(batch.refs[i].addr, incremental.refs[i].addr) << i;
    EXPECT_EQ(batch.refs[i].kind, incremental.refs[i].kind) << i;
  }
  EXPECT_EQ(batch.stats.validation_errors, incremental.stats.validation_errors);
}

TEST(TraceInfoTable, DuplicateKeyRejected) {
  TraceInfoTable table;
  table.Add(0x1000, {0x00400000, 1, 0, {}, 0});
  EXPECT_THROW(table.Add(0x1000, {0x00400100, 1, 0, {}, 0}), InternalError);
}

}  // namespace
}  // namespace wrl
