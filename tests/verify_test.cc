// wrlverify static-analysis tests: clean instrumented objects produce zero
// findings, and each seeded corruption (the ISSUE's mutation table) is
// caught by the specific pass that owns the invariant, with a pc-accurate
// diagnostic.
#include "verify/verify.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "asm/assembler.h"
#include "epoxie/epoxie.h"
#include "isa/isa.h"
#include "kernel/kernel_asm.h"
#include "stats/stats.h"
#include "support/json.h"
#include "trace/abi.h"

namespace wrl {
namespace {

struct Built {
  EpoxieConfig config;
  ObjectFile orig;
  InstrumentResult res;
};

Built Build(const char* src, InstrumentMode mode = InstrumentMode::kEpoxie) {
  Built b;
  b.config.mode = mode;
  b.orig = Assemble("body.s", src);
  b.res = Instrument(b.orig, b.config);
  return b;
}

VerifyReport Verify(const Built& b) {
  VerifyOptions options;
  options.epoxie = b.config;
  return VerifyInstrumentedObject(b.orig, b.res, options);
}

// Byte offset of the first jal-to-`symbol` call at/after `from`.
uint32_t FindCall(const Built& b, const std::string& symbol, uint32_t from = 0) {
  uint32_t best = UINT32_MAX;
  for (const Relocation& r : b.res.object.relocations) {
    if (r.section == SectionId::kText && r.type == RelocType::kJump26 && r.symbol == symbol &&
        r.offset >= from && r.offset < best) {
      best = r.offset;
    }
  }
  EXPECT_NE(best, UINT32_MAX) << "no call to " << symbol;
  return best;
}

// Byte offset of the first instrumented word equal to `raw`.
uint32_t FindRaw(const Built& b, uint32_t raw) {
  for (uint32_t q = 0; q < b.res.object.NumTextWords(); ++q) {
    if (b.res.object.TextWord(q * 4) == raw) {
      return q * 4;
    }
  }
  ADD_FAILURE() << "word not found: " << DisassembleWord(raw, 0);
  return 0;
}

bool HasMessage(const VerifyReport& report, VerifyPass pass, const std::string& needle) {
  for (const VerifyFinding& f : report.findings) {
    if (f.pass == pass && f.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// A body exercising every rewriting rule: packed and surrogate memory ops,
// the Figure-2 sw-ra hazard, an ra-writing load (SAVED_RA refresh), a CTI
// pair with a delay-slot store, a loop branch, and stolen-register windows.
constexpr const char* kFullBody = R"(
        .globl main
main:   addiu $sp, $sp, -24
        sw   $ra, 20($sp)
        la   $t0, buf
        li   $t1, 3
loop:   sw   $t1, 0($t0)
        lw   $t2, 0($t0)
        addiu $t1, $t1, -1
        bne  $t1, $zero, loop
        nop
        jal  helper
        sw   $t2, 4($t0)
        li   $t8, 7
        addu $t9, $t8, $t1
        sw   $t9, 8($t0)
        lw   $ra, 20($sp)
        jr   $ra
        addiu $sp, $sp, 24

helper: lb   $t3, 12($t0)
        jr   $ra
        sb   $t3, 13($t0)
        .data
buf:    .space 32
)";

// ---- Clean runs -----------------------------------------------------------

TEST(VerifyClean, EpoxieFullBodyNoFindings) {
  Built b = Build(kFullBody);
  VerifyReport report = Verify(b);
  for (const VerifyFinding& f : report.findings) {
    ADD_FAILURE() << VerifySeverityName(f.severity) << " " << VerifyPassName(f.pass) << " pc=0x"
                  << std::hex << f.pc << ": " << f.message;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.findings.empty());
  // Every original instruction is accounted for by the lift.
  EXPECT_EQ(report.stats.instructions, b.orig.NumTextWords());
  EXPECT_GT(report.stats.traced_blocks, 0u);
  EXPECT_GT(report.stats.mem_ops, 0u);
}

TEST(VerifyClean, PixieFullBodyNoFindings) {
  Built b = Build(kFullBody, InstrumentMode::kPixie);
  VerifyReport report = Verify(b);
  for (const VerifyFinding& f : report.findings) {
    ADD_FAILURE() << VerifyPassName(f.pass) << " pc=0x" << std::hex << f.pc << ": " << f.message;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.stats.instructions, b.orig.NumTextWords());
}

TEST(VerifyClean, InstrumentedKernelNoFindings) {
  Built b;
  b.orig = Assemble("kernel.s", KernelAsm());
  b.res = Instrument(b.orig, b.config);
  VerifyReport report = Verify(b);
  for (const VerifyFinding& f : report.findings) {
    ADD_FAILURE() << VerifyPassName(f.pass) << " pc=0x" << std::hex << f.pc << ": " << f.message;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.stats.traced_blocks, 100u);
}

TEST(VerifyClean, UntracedBlocksCopiedVerbatim) {
  Built b = Build(R"(
        .globl main
        .notrace_on
main:   la   $t0, buf
        sw   $zero, 0($t0)
        jr   $ra
        nop
        .data
buf:    .word 0
)");
  VerifyReport report = Verify(b);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.stats.traced_blocks, 0u);
}

// ---- Mutation table: shape pass ------------------------------------------

TEST(VerifyMutation, MissingBlockHeaderCaughtByShape) {
  Built b = Build(kFullBody);
  // Clobber the first word of block 0's header (sw ra, SAVED_RA(xreg3)).
  b.res.object.SetTextWord(0, 0);  // nop
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kShape);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, 0u);
  EXPECT_NE(f->message.find("block header word 0"), std::string::npos);
  // The walk resyncs via the static block map: later blocks still verify,
  // so the corruption yields a targeted diagnostic, not a cascade.
  EXPECT_LT(report.stats.errors, 4u);
}

TEST(VerifyMutation, WrongDelaySlotOpCaughtByShape) {
  Built b = Build(R"(
        .globl main
main:   la   $t0, buf
        sw   $zero, 0($t0)
        jr   $ra
        nop
        .data
buf:    .word 0
)");
  // The store packs into the memtrace delay slot; corrupt its offset so the
  // slot no longer holds the block's next memory instruction.
  uint32_t call = FindCall(b, b.config.memtrace_symbol);
  uint32_t delay = call + 4;
  ASSERT_EQ(b.res.object.TextWord(delay), EncodeIType(Op::kSw, kT0, kZero, 0));
  b.res.object.SetTextWord(delay, EncodeIType(Op::kSw, kT0, kZero, 8));
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kShape);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, delay);
  EXPECT_NE(f->message.find("memtrace delay slot"), std::string::npos);
}

TEST(VerifyMutation, WrongSurrogateBaseCaughtByShape) {
  Built b = Build(R"(
        .globl main
main:   addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
)");
  // sw ra, 4(sp) reads ra — the Figure-2 hazard — so its announcement is a
  // surrogate (addiu zero, sp, 4).  Point the surrogate at the wrong base.
  uint32_t surrogate = FindRaw(b, EncodeIType(Op::kAddiu, kSp, kZero, 4));
  b.res.object.SetTextWord(surrogate, EncodeIType(Op::kAddiu, kT0, kZero, 4));
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kShape);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, surrogate);
  EXPECT_NE(f->message.find("announcement decodes"), std::string::npos);
}

TEST(VerifyMutation, IllegallyPackedRaStoreCaughtByShape) {
  Built b = Build(R"(
        .globl main
main:   addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
)");
  // Rewrite the legal surrogate form into the illegal packed form: put the
  // ra-reading store itself in the memtrace delay slot.
  uint32_t surrogate = FindRaw(b, EncodeIType(Op::kAddiu, kSp, kZero, 4));
  b.res.object.SetTextWord(surrogate, EncodeIType(Op::kSw, kSp, kRa, 4));
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasMessage(report, VerifyPass::kShape, "Figure-2"));
}

// ---- Mutation table: relocation pass -------------------------------------

TEST(VerifyMutation, BadBranchRetargetCaughtByRelocation) {
  Built b = Build(kFullBody);
  // Find the retargeted bne and push its offset one word off.
  Inst orig_bne;
  for (uint32_t i = 0; i < b.orig.NumTextWords(); ++i) {
    Inst in = Decode(b.orig.TextWord(i * 4));
    if (in.op == Op::kBne) {
      orig_bne = in;
      break;
    }
  }
  ASSERT_EQ(orig_bne.op, Op::kBne);
  uint32_t pos = UINT32_MAX;
  for (uint32_t q = 0; q < b.res.object.NumTextWords(); ++q) {
    uint32_t w = b.res.object.TextWord(q * 4);
    if ((w & 0xffff0000u) == (orig_bne.raw & 0xffff0000u)) {
      pos = q * 4;
      break;
    }
  }
  ASSERT_NE(pos, UINT32_MAX);
  b.res.object.SetTextWord(pos, b.res.object.TextWord(pos) + 1);
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kRelocation);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, pos);
  EXPECT_NE(f->message.find("branch retargeting is wrong"), std::string::npos);
}

TEST(VerifyMutation, AlteredRelocationCaughtByRelocation) {
  Built b = Build(kFullBody);
  // Corrupt the addend of a moved data-address relocation (the la buf pair):
  // the address correction no longer agrees with the original object.
  bool mutated = false;
  uint32_t offset = 0;
  for (Relocation& r : b.res.object.relocations) {
    if (r.section == SectionId::kText && r.symbol == "buf" && r.type == RelocType::kLo16) {
      r.addend += 4;
      offset = r.offset;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kRelocation);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, offset);
  EXPECT_NE(f->message.find("lost or altered"), std::string::npos);
}

TEST(VerifyMutation, DroppedJumpRelocationCaughtByRelocation) {
  Built b = Build(kFullBody);
  // Delete the jal helper relocation: the jump can no longer be statically
  // corrected at link time.
  uint32_t offset = FindCall(b, "helper");
  auto& relocs = b.res.object.relocations;
  for (size_t i = 0; i < relocs.size(); ++i) {
    if (relocs[i].section == SectionId::kText && relocs[i].offset == offset &&
        relocs[i].type == RelocType::kJump26) {
      relocs.erase(relocs.begin() + i);
      break;
    }
  }
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasMessage(report, VerifyPass::kRelocation, "without a jump26 relocation"));
}

// ---- Mutation table: trace-table pass ------------------------------------

TEST(VerifyMutation, FlippedStoreInBlockMapCaughtByTraceTable) {
  Built b = Build(kFullBody);
  ASSERT_FALSE(b.res.blocks.empty());
  ASSERT_FALSE(b.res.blocks[0].mem_ops.empty());
  b.res.blocks[0].mem_ops[0].is_store = !b.res.blocks[0].mem_ops[0].is_store;
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kTraceTable);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("disagrees with the text"), std::string::npos);
}

TEST(VerifyMutation, DroppedMemOpInBlockMapCaughtByTraceTable) {
  Built b = Build(kFullBody);
  ASSERT_FALSE(b.res.blocks.empty());
  ASSERT_FALSE(b.res.blocks[0].mem_ops.empty());
  b.res.blocks[0].mem_ops.pop_back();
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasMessage(report, VerifyPass::kTraceTable, "memory ops"));
}

TEST(VerifyMutation, BadKeyOffsetCaughtByTraceTable) {
  Built b = Build(kFullBody);
  ASSERT_FALSE(b.res.blocks.empty());
  b.res.blocks[0].key_offset += 4;
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kTraceTable);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, 0u);  // Reported against the block header.
  EXPECT_NE(f->message.find("bbtrace return slot"), std::string::npos);
}

TEST(VerifyMutation, DuplicateKeysCaughtByTraceTable) {
  Built b = Build(kFullBody);
  ASSERT_GE(b.res.blocks.size(), 2u);
  b.res.blocks[1].key_offset = b.res.blocks[0].key_offset;
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasMessage(report, VerifyPass::kTraceTable, "duplicate block key"));
}

// ---- Mutation table: liveness pass ---------------------------------------

TEST(VerifyMutation, ShadowLoadSwappedForSpillReloadCaughtByLiveness) {
  Built b = Build(R"(
        .globl main
main:   li   $t8, 7
        addu $t0, $t8, $t8
        jr   $ra
        nop
)");
  // The read window for t8 loads its shadow value (lw t8, SHADOW1($at)).
  // Swap it for a spill reload: the original addu then reads tracing state.
  uint32_t shadow_load = FindRaw(b, EncodeIType(Op::kLw, kAt, kXreg1, kBkShadow0));
  b.res.object.SetTextWord(shadow_load, EncodeIType(Op::kLw, kAt, kXreg1, kBkSpill0));
  uint32_t orig_addu = FindRaw(b, EncodeRType(Op::kAddu, kXreg1, kXreg1, kT0, 0));
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kLiveness);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, orig_addu);
  EXPECT_NE(f->message.find("holds tracing state"), std::string::npos);
  // The shape walk stays clean: only the liveness property is violated.
  EXPECT_EQ(report.CountForPass(VerifyPass::kShape), 0u);
}

TEST(VerifyMutation, SpillSaveRemovedCaughtByLiveness) {
  Built b = Build(R"(
        .globl main
main:   li   $t8, 7
        jr   $ra
        nop
)");
  // The write window spills t8's tracing state before the li clobbers it.
  // Turn the spill save into a shadow write-back: the steal is no longer
  // dominated by a save.
  uint32_t spill_save = FindRaw(b, EncodeIType(Op::kSw, kAt, kXreg1, kBkSpill0));
  b.res.object.SetTextWord(spill_save, EncodeIType(Op::kSw, kAt, kXreg1, kBkShadow0));
  VerifyReport report = Verify(b);
  EXPECT_FALSE(report.ok());
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kLiveness);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, spill_save);
  EXPECT_EQ(report.CountForPass(VerifyPass::kShape), 0u);
}

// ---- Image-level audit ----------------------------------------------------

Executable MakeImage(const std::vector<uint32_t>& words) {
  Executable exe;
  exe.text_base = 0x1000;
  exe.entry = 0x1000;
  exe.text.resize(words.size() * 4);
  std::memcpy(exe.text.data(), words.data(), exe.text.size());
  return exe;
}

TEST(VerifyImageAudit, CleanImage) {
  Executable exe = MakeImage({
      EncodeIType(Op::kBeq, kZero, kZero, 1),  // beq +1 (to jr)
      0,                                       // nop
      EncodeRType(Op::kJr, kRa, 0, 0, 0),      // jr ra
      0,                                       // nop
  });
  VerifyReport report = VerifyImage(exe);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.findings.empty());
}

TEST(VerifyImageAudit, BranchTargetOutsideText) {
  Executable exe = MakeImage({
      EncodeIType(Op::kBeq, kZero, kZero, 100),
      0,
      EncodeRType(Op::kJr, kRa, 0, 0, 0),
      0,
  });
  VerifyReport report = VerifyImage(exe);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].pc, 0x1000u);
  EXPECT_NE(report.findings[0].message.find("branch target"), std::string::npos);
}

TEST(VerifyImageAudit, CtiInDelaySlot) {
  Executable exe = MakeImage({
      EncodeIType(Op::kBeq, kZero, kZero, 1),
      EncodeIType(Op::kBeq, kZero, kZero, 0),  // CTI in the delay slot
      EncodeRType(Op::kJr, kRa, 0, 0, 0),
      0,
  });
  VerifyReport report = VerifyImage(exe);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.findings[0].pc, 0x1004u);
  EXPECT_NE(report.findings[0].message.find("delay slot"), std::string::npos);
}

TEST(VerifyImageAudit, EntryOutsideText) {
  Executable exe = MakeImage({EncodeRType(Op::kJr, kRa, 0, 0, 0), 0});
  exe.entry = 0x9000;
  VerifyReport report = VerifyImage(exe);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.findings[0].message.find("entry point"), std::string::npos);
}

// ---- Report plumbing ------------------------------------------------------

TEST(VerifyReportTest, StatsBindIntoRegistry) {
  Built b = Build(kFullBody);
  VerifyReport report = Verify(b);
  StatsRegistry registry;
  report.RegisterStats(registry);
  EXPECT_EQ(registry.CounterValue("verify.blocks"), report.stats.blocks);
  EXPECT_EQ(registry.CounterValue("verify.instructions"), report.stats.instructions);
  EXPECT_EQ(registry.CounterValue("verify.errors"), 0u);
}

TEST(VerifyReportTest, JsonRoundTrip) {
  Built b = Build(kFullBody);
  b.res.object.SetTextWord(0, 0);  // Seed one finding.
  VerifyReport report = Verify(b);
  ASSERT_FALSE(report.findings.empty());
  JsonWriter writer;
  report.WriteJson(writer);
  JsonValue doc = ParseJson(writer.TakeString());
  ASSERT_TRUE(doc.IsObject());
  EXPECT_EQ(doc.At("stats").At("errors").number, static_cast<double>(report.stats.errors));
  const JsonValue& findings = doc.At("findings");
  ASSERT_TRUE(findings.IsArray());
  ASSERT_EQ(findings.array.size(), report.findings.size());
  EXPECT_EQ(findings.array[0].At("pass").string, VerifyPassName(report.findings[0].pass));
  EXPECT_EQ(findings.array[0].At("severity").string, "error");
  EXPECT_FALSE(findings.array[0].At("message").string.empty());
}

TEST(VerifyReportTest, MergeAccumulates) {
  Built b = Build(kFullBody);
  VerifyReport a = Verify(b);
  VerifyReport total;
  total.Merge(a);
  total.Merge(a);
  EXPECT_EQ(total.stats.blocks, 2 * a.stats.blocks);
  EXPECT_EQ(total.findings.size(), 2 * a.findings.size());
}

}  // namespace
}  // namespace wrl
