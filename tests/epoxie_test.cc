// End-to-end validation of epoxie instrumentation (the paper's §4.3
// methodology): for each deterministic body program, the address trace
// reconstructed from the software-instrumented run must match, reference by
// reference, the trace emitted by the machine's hardware hook on the
// uninstrumented run.
#include "epoxie/epoxie.h"

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "harness/bare_runtime.h"
#include "isa/isa.h"
#include "support/error.h"
#include "trace/abi.h"

namespace wrl {
namespace {

// Asserts exact equality of the two reference streams.
void ExpectTracesMatch(const BareComparison& cmp) {
  ASSERT_TRUE(cmp.parser_errors.empty())
      << "first parser error: " << cmp.parser_errors.front();
  ASSERT_EQ(cmp.parsed.size(), cmp.reference.size());
  for (size_t i = 0; i < cmp.parsed.size(); ++i) {
    const TraceRef& p = cmp.parsed[i];
    const RefEvent& r = cmp.reference[i];
    int p_kind = p.kind;
    int r_kind = r.kind;  // Same enumerator order by construction.
    ASSERT_EQ(p_kind, r_kind) << "event " << i;
    ASSERT_EQ(p.addr, r.vaddr) << "event " << i << " kind " << p_kind;
  }
}

void RunMatchTest(const char* body, InstrumentMode mode = InstrumentMode::kEpoxie) {
  BareBuildOptions options;
  options.mode = mode;
  BareBuild build = BuildBareTraced(body, options);
  BareComparison cmp = CompareBareTrace(build);
  ASSERT_GT(cmp.reference.size(), 0u);
  ExpectTracesMatch(cmp);
}

TEST(EpoxieValidation, StraightLine) {
  RunMatchTest(R"(
        .globl main
main:
        la   $t0, buf
        li   $t1, 3
        sw   $t1, 0($t0)
        lw   $t2, 0($t0)
        addu $t2, $t2, $t2
        sw   $t2, 4($t0)
        jr   $ra
        nop
        .data
buf:    .space 32
)");
}

TEST(EpoxieValidation, LoopWithByteOps) {
  RunMatchTest(R"(
        .globl main
main:
        la   $t0, buf
        li   $t1, 0
        li   $t2, 40
loop:   sb   $t1, 0($t0)
        lbu  $t3, 0($t0)
        addu $t4, $t4, $t3
        addiu $t0, $t0, 1
        addiu $t1, $t1, 1
        bne  $t1, $t2, loop
        nop
        jr   $ra
        nop
        .data
buf:    .space 64
)");
}

TEST(EpoxieValidation, FunctionCallsSaveRestoreRa) {
  // Exercises the paper's Figure 2 pattern: sw ra, then jal with a store in
  // the delay slot, and the epilogue lw ra (a hazard: writes ra).
  RunMatchTest(R"(
        .globl main
main:
        addiu $sp, $sp, -24
        sw   $ra, 20($sp)
        sw   $a0, 24($sp)
        jal  helper
        sw   $a1, 28($sp)
        jal  helper
        nop
        lw   $ra, 20($sp)
        jr   $ra
        addiu $sp, $sp, 24

helper: la   $t0, cell
        lw   $t1, 0($t0)
        addiu $t1, $t1, 1
        jr   $ra
        sw   $t1, 0($t0)
        .data
cell:   .word 0
)");
}

TEST(EpoxieValidation, MemoryOpReadingRa) {
  // sw ra, 20(sp) cannot sit in the jal memtrace delay slot (the jal
  // clobbers ra first) — the surrogate path must produce the right address
  // and the right stored value.
  RunMatchTest(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        lw   $t0, 4($sp)
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
)");
}

TEST(EpoxieValidation, MemoryBasedOnRa) {
  // A load whose *base* is ra: memtrace must record the program-visible ra
  // (from SAVED_RA), not its own return address.  ra is a text address, so
  // in the traced run it refers to *instrumented* text and cross-run
  // matching does not apply (a documented limitation shared with the real
  // epoxie: runtime-computed text addresses see the instrumented image);
  // instead we check the recorded address is the real load's address.
  BareBuild build = BuildBareTraced(R"(
        .globl main
main:
        move $t5, $ra
        jal  get_anchor
        nop
        jr   $t5
        nop
get_anchor:
        lw   $t0, 0($ra)         # loads the instruction word at the return point
        jr   $ra
        nop
)");
  BareTraceRun traced = RunBareTraced(build);
  TraceParser parser(&build.table);
  parser.SetInitialContext(kKernelPid);
  std::vector<TraceRef> loads;
  parser.SetRefSink([&](const TraceRef& ref) {
    if (ref.kind == TraceRef::kLoad) {
      loads.push_back(ref);
    }
  });
  parser.Feed(traced.trace_words);
  parser.Finish();
  ASSERT_TRUE(parser.errors().empty()) << parser.errors().front();
  ASSERT_EQ(loads.size(), 1u);
  // The program-visible ra is inside the instrumented body text; memtrace's
  // own return address lives in the support library's text, well below it.
  uint32_t body_begin = build.instrumented.object_text_bases[2];
  EXPECT_GE(loads[0].addr, body_begin);
  EXPECT_LT(loads[0].addr, build.instrumented.TextEnd());
}

TEST(EpoxieValidation, StolenRegisterShadowing) {
  // The body uses the stolen registers t7/t8/t9 as ordinary computation
  // registers; epoxie must shadow them transparently.
  RunMatchTest(R"(
        .globl main
main:
        li   $t7, 100
        li   $t8, 23
        addu $t9, $t7, $t8       # 123
        la   $t0, cell
        sw   $t9, 0($t0)
        lw   $t7, 0($t0)
        addiu $t7, $t7, 1        # 124
        sw   $t7, 4($t0)
        lw   $t1, 4($t0)
        li   $t2, 124
        beq  $t1, $t2, good
        nop
bad:    lw   $t3, 8($t0)         # distinguishable path
good:   jr   $ra
        nop
        .data
cell:   .space 16
)");
}

TEST(EpoxieValidation, StolenRegisterAsBase) {
  // A load through a stolen base register: the shadow value must feed
  // memtrace and the real access.
  RunMatchTest(R"(
        .globl main
main:
        la   $t8, table          # t8 is stolen (xreg1)
        lw   $t0, 4($t8)
        sw   $t0, 8($t8)
        jr   $ra
        nop
        .data
table:  .word 11, 22, 33
)");
}

TEST(EpoxieValidation, DelaySlotMemoryOp) {
  RunMatchTest(R"(
        .globl main
main:
        la   $t0, buf
        li   $t1, 5
        b    over
        sw   $t1, 0($t0)         # store in branch delay slot
        sw   $t1, 4($t0)         # skipped
over:   lw   $t2, 0($t0)
        jr   $ra
        nop
        .data
buf:    .space 16
)");
}

TEST(EpoxieValidation, AtBasedLoadFromLaExpansion) {
  // lw $t0, sym assembles to lui/ori $at + lw 0($at): the at-based load
  // rides in the memtrace delay slot.
  RunMatchTest(R"(
        .globl main
main:
        lw   $t0, cell
        addiu $t0, $t0, 7
        sw   $t0, cell
        jr   $ra
        nop
        .data
cell:   .word 35
)");
}

TEST(EpoxieValidation, SelfClobberingLoad) {
  // lw t0, 0(t0) overwrites its own base: it must not ride in the memtrace
  // delay slot, where the load would execute before the decode.
  RunMatchTest(R"(
        .globl main
main:
        la   $t0, cell
        lw   $t0, 0($t0)         # t0 becomes the loaded value
        la   $t1, cell
        sw   $t0, 4($t1)
        lw   $t1, 4($t1)         # another self-clobbering load
        jr   $ra
        nop
        .data
cell:   .word 77
        .word 0
)");
}

TEST(EpoxieValidation, HalfwordAndSignExtension) {
  RunMatchTest(R"(
        .globl main
main:
        la   $t0, buf
        li   $t1, 0x8001
        sh   $t1, 0($t0)
        lh   $t2, 0($t0)
        lhu  $t3, 0($t0)
        sb   $t2, 4($t0)
        lb   $t4, 4($t0)
        jr   $ra
        nop
        .data
buf:    .space 8
)",
               InstrumentMode::kEpoxie);
}

TEST(EpoxieValidation, MultDivSequences) {
  RunMatchTest(R"(
        .globl main
main:
        li   $t0, 77
        li   $t1, 13
        mult $t0, $t1
        mflo $t2
        la   $t3, cell
        sw   $t2, 0($t3)
        div  $t2, $t1
        mflo $t4
        sw   $t4, 4($t3)
        jr   $ra
        nop
        .data
cell:   .space 8
)");
}

TEST(EpoxieValidation, NestedCallsAndRecursion) {
  RunMatchTest(R"(
        .globl main
# Recursive factorial(6) with stack frames.
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $a0, 6
        jal  fact
        nop
        la   $t0, result
        sw   $v0, 0($t0)
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8

fact:   addiu $sp, $sp, -16
        sw   $ra, 12($sp)
        sw   $a0, 8($sp)
        li   $v0, 1
        blez $a0, fact_done
        nop
        addiu $a0, $a0, -1
        jal  fact
        nop
        lw   $t0, 8($sp)
        mult $v0, $t0
        mflo $v0
fact_done:
        lw   $ra, 12($sp)
        jr   $ra
        addiu $sp, $sp, 16
        .data
result: .word 0
)");
}

TEST(EpoxieValidation, PixieModeAlsoCorrect) {
  RunMatchTest(R"(
        .globl main
main:
        la   $t0, buf
        li   $t1, 10
loop:   sw   $t1, 0($t0)
        lw   $t2, 0($t0)
        addiu $t1, $t1, -1
        bgtz $t1, loop
        nop
        jr   $ra
        nop
        .data
buf:    .space 8
)",
               InstrumentMode::kPixie);
}

TEST(EpoxieExpansion, EpoxieWithinPaperBand) {
  // Text growth for a representative body must land in the paper's
  // 1.9–2.3x band (§3.2).
  const char* body = R"(
        .globl main
main:
        addiu $sp, $sp, -32
        sw   $ra, 28($sp)
        sw   $s0, 24($sp)
        la   $s0, data
        li   $t0, 0
        li   $t1, 16
loop:   sll  $t2, $t0, 2
        addu $t3, $s0, $t2
        lw   $t4, 0($t3)
        addu $t5, $t5, $t4
        sw   $t5, 64($t3)
        addiu $t0, $t0, 1
        bne  $t0, $t1, loop
        nop
        lw   $s0, 24($sp)
        lw   $ra, 28($sp)
        jr   $ra
        addiu $sp, $sp, 32
        .data
data:   .space 256
)";
  ObjectFile obj = Assemble("body.s", body);
  EpoxieConfig config;
  InstrumentResult result = Instrument(obj, config);
  EXPECT_GE(result.TextGrowthFactor(), 1.5);
  EXPECT_LE(result.TextGrowthFactor(), 2.6);
}

TEST(EpoxieExpansion, PixieLargerThanEpoxie) {
  const char* body = R"(
        .globl main
main:
        la   $t0, d
        lw   $t1, 0($t0)
        sw   $t1, 4($t0)
        lw   $t2, 8($t0)
        sw   $t2, 12($t0)
        jr   $ra
        nop
        .data
d:      .space 32
)";
  ObjectFile obj = Assemble("body.s", body);
  EpoxieConfig epoxie;
  EpoxieConfig pixie;
  pixie.mode = InstrumentMode::kPixie;
  double epoxie_growth = Instrument(obj, epoxie).TextGrowthFactor();
  double pixie_growth = Instrument(obj, pixie).TextGrowthFactor();
  EXPECT_GT(pixie_growth, epoxie_growth * 1.5);
}

TEST(EpoxieStructure, HeaderMatchesFigure2) {
  // The instrumented form of the paper's Figure 2(a) prologue must begin
  // with the three-instruction header: sw ra, SAVED_RA(xreg3); jal bbtrace;
  // li zero, N.
  ObjectFile obj = Assemble("body.s", R"(
        .globl fopen
fopen:  addiu $sp, $sp, -24
        sw   $ra, 20($sp)
        sw   $a0, 24($sp)
        jal  _findiop
        sw   $a1, 28($sp)
_findiop:
        jr   $ra
        nop
)");
  InstrumentResult result = Instrument(obj, EpoxieConfig{});
  Inst w0 = Decode(result.object.TextWord(0));
  Inst w1 = Decode(result.object.TextWord(4));
  Inst w2 = Decode(result.object.TextWord(8));
  EXPECT_EQ(w0.op, Op::kSw);
  EXPECT_EQ(w0.rt, kRa);
  EXPECT_EQ(w0.rs, kXreg3);
  EXPECT_EQ(w1.op, Op::kJal);
  EXPECT_EQ(w2.op, Op::kOri);
  EXPECT_EQ(w2.rt, kZero);
  // N = 1 bb word + 3 stores in the block (sw ra, sw a0, sw a1).
  EXPECT_EQ(w2.imm, 4);
}

TEST(EpoxieStructure, NoTraceBlocksNotInstrumented) {
  ObjectFile obj = Assemble("body.s", R"(
        .globl main
main:   lw   $t0, cell
        jr   $ra
        nop
        .notrace_on
        .globl secret
secret: lw   $t1, cell
        jr   $ra
        nop
        .notrace_off
        .data
cell:   .word 9
)");
  InstrumentResult result = Instrument(obj, EpoxieConfig{});
  // Only main's block appears in the static info.
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].orig_offset, 0u);
}

TEST(EpoxieStructure, RejectsStolenRegisterInCti) {
  ObjectFile obj = Assemble("body.s", R"(
main:   jr   $t8
        nop
)");
  EXPECT_THROW(Instrument(obj, EpoxieConfig{}), Error);
}

TEST(EpoxieStructure, RejectsAtPlusStolenCombination) {
  ObjectFile obj = Assemble("body.s", R"(
main:   addu $t8, $at, $t9
        jr   $ra
        nop
)");
  EXPECT_THROW(Instrument(obj, EpoxieConfig{}), Error);
}

TEST(EpoxieStructure, RejectsDelaySlotStolenReg)
{
  ObjectFile obj = Assemble("body.s", R"(
main:   jr   $ra
        addu $t8, $t0, $t1
)");
  EXPECT_THROW(Instrument(obj, EpoxieConfig{}), Error);
}

TEST(EpoxieStructure, RejectsDelaySlotMemReadingCtiLink) {
  // jalr writes $t2, and the delay-slot load is based on $t2.  The hoisted
  // memtrace announcement would read the pre-jump value while the load
  // executes with the link value — epoxie must refuse rather than silently
  // mis-rewrite (regression: only the ra/jal case used to be checked).
  ObjectFile obj = Assemble("body.s", R"(
main:   jalr $t2, $t0
        lw   $t3, 0($t2)
)");
  try {
    Instrument(obj, EpoxieConfig{});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("which the jump writes"), std::string::npos)
        << e.what();
  }
}

TEST(EpoxieStructure, AcceptsDelaySlotMemNotTouchingCtiLink) {
  // Same CTI, but the slot's base is unrelated to the link register: the
  // hoisted announcement is sound and instrumentation must succeed.
  ObjectFile obj = Assemble("body.s", R"(
main:   jalr $t2, $t0
        lw   $t3, 0($sp)
)");
  InstrumentResult result = Instrument(obj, EpoxieConfig{});
  EXPECT_GT(result.instrumented_text_words, result.original_text_words);
}

TEST(EpoxieStructure, BlockKeysAreUnique) {
  ObjectFile obj = Assemble("body.s", R"(
        .globl main
main:   beq  $t0, $t1, a
        nop
a:      beq  $t0, $t2, b
        nop
b:      jr   $ra
        nop
)");
  InstrumentResult result = Instrument(obj, EpoxieConfig{});
  std::set<uint32_t> keys;
  for (const BlockStatic& b : result.blocks) {
    EXPECT_TRUE(keys.insert(b.key_offset).second);
  }
  EXPECT_EQ(result.blocks.size(), keys.size());
}

}  // namespace
}  // namespace wrl
