#include "memsys/memsys.h"

#include <gtest/gtest.h>

namespace wrl {
namespace {

TEST(DirectMappedCache, HitAfterFill) {
  DirectMappedCache cache({1024, 16});
  EXPECT_FALSE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x100c));  // Same 16-byte line.
  EXPECT_FALSE(cache.Access(0x1010));  // Next line.
}

TEST(DirectMappedCache, ConflictEviction) {
  DirectMappedCache cache({1024, 16});  // 64 lines.
  EXPECT_FALSE(cache.Access(0x0000));
  EXPECT_FALSE(cache.Access(0x0400));  // Same index, different tag.
  EXPECT_FALSE(cache.Access(0x0000));  // Evicted.
}

TEST(DirectMappedCache, UpdateDoesNotAllocate) {
  DirectMappedCache cache({1024, 16});
  EXPECT_FALSE(cache.Update(0x2000));  // Not present; write-through only.
  EXPECT_FALSE(cache.Access(0x2000));  // Still a miss.
  EXPECT_TRUE(cache.Update(0x2000));   // Present now.
}

TEST(DirectMappedCache, Invalidate) {
  DirectMappedCache cache({1024, 16});
  cache.Access(0x3000);
  cache.Invalidate(0x3000);
  EXPECT_FALSE(cache.Access(0x3000));
  cache.Access(0x3000);
  cache.Invalidate(0x7000);  // Different tag: no effect.
  EXPECT_TRUE(cache.Access(0x3000));
}

TEST(DirectMappedCache, InvalidateAll) {
  DirectMappedCache cache({256, 16});
  for (uint32_t a = 0; a < 256; a += 16) {
    cache.Access(a);
  }
  cache.InvalidateAll();
  for (uint32_t a = 0; a < 256; a += 16) {
    EXPECT_FALSE(cache.Access(a));
  }
}

TEST(WriteBuffer, NoStallWhenNotFull) {
  WriteBuffer wb(4, 5);
  EXPECT_EQ(wb.Push(0), 0u);
  EXPECT_EQ(wb.Push(1), 0u);
  EXPECT_EQ(wb.Push(2), 0u);
  EXPECT_EQ(wb.Push(3), 0u);
}

TEST(WriteBuffer, StallsWhenFull) {
  WriteBuffer wb(2, 10);
  EXPECT_EQ(wb.Push(0), 0u);   // Retires at 10.
  EXPECT_EQ(wb.Push(0), 0u);   // Retires at 20.
  uint64_t stall = wb.Push(0);  // Must wait for the first entry.
  EXPECT_EQ(stall, 10u);
}

TEST(WriteBuffer, DrainsOverTime) {
  WriteBuffer wb(2, 10);
  wb.Push(0);
  wb.Push(0);
  // At time 25 both entries have retired.
  EXPECT_EQ(wb.Push(25), 0u);
}

TEST(WriteBuffer, BurstThenRecovery) {
  WriteBuffer wb(6, 5);
  uint64_t now = 0;
  uint64_t total_stall = 0;
  for (int i = 0; i < 20; ++i) {
    uint64_t stall = wb.Push(now);
    total_stall += stall;
    now += 1 + stall;
  }
  // 20 stores, drain rate 1/5 cycles: heavy stalling expected.
  EXPECT_GT(total_stall, 40u);
}

TEST(MemorySystem, FetchMissAccounting) {
  MemSysConfig config;
  config.icache = {256, 16};
  MemorySystem ms(config);
  EXPECT_EQ(ms.Fetch(0x0, 0), config.read_miss_penalty);
  EXPECT_EQ(ms.Fetch(0x4, 1), 0u);
  EXPECT_EQ(ms.stats().inst_fetches, 2u);
  EXPECT_EQ(ms.stats().icache_misses, 1u);
}

TEST(MemorySystem, LoadStoreAccounting) {
  MemSysConfig config;
  config.dcache = {256, 4};
  MemorySystem ms(config);
  ms.Load(0x100, 0);
  ms.Load(0x100, 1);
  ms.Store(0x200, 2);
  EXPECT_EQ(ms.stats().data_reads, 2u);
  EXPECT_EQ(ms.stats().dcache_misses, 1u);
  EXPECT_EQ(ms.stats().data_writes, 1u);
}

TEST(MemorySystem, UncachedCharged) {
  MemorySystem ms(MemSysConfig{});
  EXPECT_EQ(ms.UncachedLoad(0x1fd00008, 0), ms.config().uncached_penalty);
  EXPECT_EQ(ms.stats().uncached_reads, 1u);
}

TEST(MemorySystem, StallCyclesFormula) {
  MemSysConfig config;
  config.icache = {64, 16};
  config.dcache = {64, 4};
  MemorySystem ms(config);
  ms.Fetch(0, 0);           // miss
  ms.Load(0x1000, 0);       // miss
  ms.UncachedLoad(0x2000, 0);
  const MemSysStats& s = ms.stats();
  EXPECT_EQ(s.StallCycles(config), 3u * config.read_miss_penalty + s.wb_stall_cycles);
}

TEST(MemorySystem, ResetClearsEverything) {
  MemorySystem ms(MemSysConfig{});
  ms.Fetch(0, 0);
  ms.Store(0, 0);
  ms.Reset();
  EXPECT_EQ(ms.stats().inst_fetches, 0u);
  EXPECT_EQ(ms.stats().data_writes, 0u);
  // Cache is cold again.
  EXPECT_EQ(ms.Fetch(0, 0), ms.config().read_miss_penalty);
}

// Property sweep: for any cache geometry, a linear scan touching each line
// once then repeated must miss exactly lines_touched times on the first pass
// and zero on the second (when the footprint fits).
struct Geometry {
  uint32_t size;
  uint32_t line;
};

class CacheSweepTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheSweepTest, LinearScanMissesOncePerLine) {
  const Geometry geometry = GetParam();
  DirectMappedCache cache({geometry.size, geometry.line});
  uint32_t misses = 0;
  for (uint32_t addr = 0; addr < geometry.size; addr += 4) {
    if (!cache.Access(addr)) {
      ++misses;
    }
  }
  EXPECT_EQ(misses, geometry.size / geometry.line);
  for (uint32_t addr = 0; addr < geometry.size; addr += 4) {
    EXPECT_TRUE(cache.Access(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheSweepTest,
                         ::testing::Values(Geometry{256, 4}, Geometry{256, 16},
                                           Geometry{1024, 4}, Geometry{1024, 32},
                                           Geometry{64 * 1024, 16}, Geometry{64 * 1024, 4}));

}  // namespace
}  // namespace wrl
