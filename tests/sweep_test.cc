// The sweep engine's contract (src/sweep): ONE pass over the reference
// stream prices a whole family of configurations with miss counts
// bit-identical to what a dedicated TraceDrivenSimulator / exact-LRU
// replay at each configuration reports — against randomized oracles for
// the two core data structures, against real captured traces end to end,
// and through every delivery mode the harness has (live, capture-replay,
// pipelined, chunk-parallel decode, per-ref shim).  Degenerate families
// and non-power-of-two geometries must be rejected loudly, not rounded.
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bare_runtime.h"
#include "harness/experiment.h"
#include "harness/replay_engine.h"
#include "memsys/memsys.h"
#include "sim/predictor.h"
#include "sim/tlb_sim.h"
#include "support/error.h"
#include "support/rng.h"
#include "sweep/sweep.h"
#include "trace/parser.h"
#include "trace/trace_log.h"

namespace wrl {
namespace {

// ---- CacheForest vs DirectMappedCache ----------------------------------

TEST(CacheForest, MatchesDirectMappedCacheAtEveryFamilySize) {
  for (uint32_t line : {4u, 16u, 64u}) {
    CacheForest forest(line, 1024, 64 * 1024);
    std::vector<DirectMappedCache> caches;
    std::vector<uint64_t> misses;
    for (uint32_t size : forest.FamilySizes()) {
      caches.emplace_back(CacheConfig{size, line});
      misses.push_back(0);
    }
    Rng rng(7 + line);
    for (int i = 0; i < 200000; ++i) {
      // A mix of hot lines and cold sweeps, adversarial for set conflicts.
      uint32_t paddr = (i % 3 == 0) ? rng.Below(1u << 14) : rng.Below(1u << 24);
      forest.Access(paddr);
      for (size_t c = 0; c < caches.size(); ++c) {
        if (!caches[c].Access(paddr)) {
          ++misses[c];
        }
      }
    }
    const std::vector<uint32_t> sizes = forest.FamilySizes();
    for (size_t c = 0; c < sizes.size(); ++c) {
      SCOPED_TRACE(sizes[c]);
      EXPECT_EQ(forest.Misses(sizes[c]), misses[c]);
    }
  }
}

TEST(CacheForest, SinglePointFamilyIsJustOneCache) {
  CacheForest forest(16, 8192, 8192);
  DirectMappedCache cache(CacheConfig{8192, 16});
  uint64_t misses = 0;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    uint32_t paddr = rng.Below(1u << 20);
    forest.Access(paddr);
    if (!cache.Access(paddr)) {
      ++misses;
    }
  }
  EXPECT_EQ(forest.FamilySizes(), std::vector<uint32_t>{8192});
  EXPECT_EQ(forest.Misses(8192), misses);
}

TEST(CacheForest, RejectsNonPowerOfTwoGeometryLoudly) {
  EXPECT_THROW(
      {
        try {
          CacheForest forest(16, 3000, 8192);
        } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("3000"), std::string::npos);
          EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos);
          throw;
        }
      },
      Error);
  EXPECT_THROW(CacheForest(12, 4096, 8192), Error);    // Line size.
  EXPECT_THROW(CacheForest(16, 4096, 40960), Error);   // Max size.
  EXPECT_THROW(CacheForest(16, 8192, 4096), Error);    // Inverted family.
  EXPECT_THROW(CacheForest(16, 8, 8192), Error);       // Size < line.
  CacheForest ok(16, 4096, 8192);
  EXPECT_THROW(ok.Misses(6000), Error);                // Non-pow2 query.
  EXPECT_THROW(ok.Misses(16384), Error);               // Outside the family.
}

// ---- StackDistanceProfiler vs a naive LRU oracle -----------------------

TEST(StackDistanceProfiler, MatchesNaiveLruStackWithCompaction) {
  StackDistanceProfiler profiler;
  std::list<uint64_t> stack;  // Front = most recent.
  Rng rng(42);
  // 9000 distinct keys over 120k accesses: the 4096-entry timestamp window
  // is exhausted many times over, so compaction is exercised mid-stream.
  uint64_t cold = 0;
  for (int i = 0; i < 120000; ++i) {
    uint64_t key = rng.Below(9000);
    uint64_t got = profiler.Access(key);
    uint64_t want = 0;
    uint64_t pos = 1;
    for (auto it = stack.begin(); it != stack.end(); ++it, ++pos) {
      if (*it == key) {
        want = pos;
        stack.erase(it);
        break;
      }
    }
    if (want == 0) {
      ++cold;
    }
    stack.push_front(key);
    ASSERT_EQ(got, want) << "access " << i << " key " << key;
  }
  EXPECT_EQ(profiler.cold_misses(), cold);
  EXPECT_EQ(profiler.distinct_keys(), stack.size());
  EXPECT_EQ(profiler.accesses(), 120000u);
}

TEST(StackDistanceProfiler, CapacityCurveMatchesDirectLruSimulation) {
  // The suffix-sum curve must equal running a real capacity-C LRU
  // structure over the same stream, for every C probed.
  Rng rng(11);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 40000; ++i) {
    keys.push_back(rng.Below(600));
  }
  StackDistanceProfiler profiler;
  for (uint64_t key : keys) {
    profiler.Access(key);
  }
  for (unsigned capacity : {1u, 2u, 7u, 64u, 600u, 4096u}) {
    SCOPED_TRACE(capacity);
    std::list<uint64_t> lru;
    uint64_t misses = 0;
    for (uint64_t key : keys) {
      bool hit = false;
      for (auto it = lru.begin(); it != lru.end(); ++it) {
        if (*it == key) {
          lru.erase(it);
          hit = true;
          break;
        }
      }
      if (!hit) {
        ++misses;
        if (lru.size() == capacity) {
          lru.pop_back();
        }
      }
      lru.push_front(key);
    }
    EXPECT_EQ(profiler.MissesAtCapacity(capacity), misses);
  }
  // Monotone and bounded: more capacity never misses more; infinite
  // capacity leaves exactly the compulsory misses.
  EXPECT_GE(profiler.MissesAtCapacity(1), profiler.MissesAtCapacity(2));
  EXPECT_EQ(profiler.MissesAtCapacity(100000), profiler.cold_misses());
}

// ---- End to end over a real captured trace -----------------------------

const char* kBody = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, table
        li   $t1, 0
        li   $t2, 96
fill:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        sw   $t1, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, fill
        nop
        li   $t1, 0
        li   $v0, 0
sum:    sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $v0, $v0, $t4
        addiu $t1, $t1, 1
        bne  $t1, $t2, sum
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
table:  .space 384
)";

SweepConfig UnitSweepConfig() {
  SweepConfig config;
  config.icache.push_back({16, 1024, 16 * 1024});
  config.dcache.push_back({4, 1024, 16 * 1024});
  config.tlb_max_entries = 8;
  return config;
}

TEST(SweepEngine, FamilyPointsBitIdenticalToIndependentReplays) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));

  SweepConfig sweep_config = UnitSweepConfig();
  std::vector<ReplayEngine::Config> configs;
  configs.push_back(
      {"sweep", [&sweep_config] { return std::make_unique<SweepEngine>(sweep_config); }});
  std::vector<ReplayEngine::Outcome> outcomes = engine.Run(configs, {});
  auto* sweep = static_cast<SweepEngine*>(outcomes[0].sink.get());
  const SweepResult& result = sweep->Finish();
  ASSERT_EQ(result.icache.size(), 5u);  // 1K..16K.
  ASSERT_EQ(result.dcache.size(), 5u);
  EXPECT_EQ(result.family_points, 10u);
  EXPECT_GT(result.refs, 0u);

  // Every family point against a dedicated TraceDrivenSimulator replay of
  // the identical capture at exactly that geometry.
  for (size_t i = 0; i < result.icache.size(); ++i) {
    SCOPED_TRACE(result.icache[i].size_bytes);
    PredictorConfig pc;
    pc.memsys.icache = {result.icache[i].size_bytes, result.icache[i].line_bytes};
    pc.memsys.dcache = {result.dcache[i].size_bytes, result.dcache[i].line_bytes};
    std::vector<ReplayEngine::Config> check;
    check.push_back({"check", [pc] { return std::make_unique<TraceDrivenSimulator>(pc); }});
    std::vector<ReplayEngine::Outcome> out = engine.Run(check, {});
    auto* sim = static_cast<TraceDrivenSimulator*>(out[0].sink.get());
    Prediction p = sim->Finish();
    EXPECT_EQ(p.memsys_stats.icache_misses, result.icache[i].misses);
    EXPECT_EQ(p.memsys_stats.dcache_misses, result.dcache[i].misses);
    // The shared TLB simulation is the replay's TLB simulation.
    EXPECT_EQ(p.utlb_misses, result.tlb.utlb_misses);
    EXPECT_EQ(p.synthesized_refs, result.synthesized_refs);
  }
}

// An exact fully-associative LRU TLB reference model, keyed exactly as the
// sweep keys its stack (ASID, virtual page).
class LruTlbOracle : public RefBatchSink {
 public:
  explicit LruTlbOracle(unsigned capacity) : capacity_(capacity) {}

  void OnRefBatch(const TraceRef* refs, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      const TraceRef& ref = refs[i];
      if (!InKuseg(ref.addr)) {
        continue;
      }
      uint8_t asid;
      if (ref.pid != kKernelPid) {
        asid = ref.pid;
        last_user_asid_ = ref.pid;
      } else {
        asid = last_user_asid_ == 0 ? 1 : last_user_asid_;
      }
      uint64_t key = (static_cast<uint64_t>(asid) << 20) | (ref.addr >> kPageShift);
      bool hit = false;
      for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (*it == key) {
          lru_.erase(it);
          hit = true;
          break;
        }
      }
      if (!hit) {
        ++misses_;
        if (lru_.size() == capacity_) {
          lru_.pop_back();
        }
      }
      lru_.push_front(key);
    }
  }

  uint64_t misses() const { return misses_; }

 private:
  unsigned capacity_;
  std::list<uint64_t> lru_;
  uint64_t misses_ = 0;
  uint8_t last_user_asid_ = 0;
};

TEST(SweepEngine, TlbCurveMatchesExactLruReplays) {
  // A synthetic stream with real kuseg content: several processes walking
  // overlapping page sets, with kernel refs interleaved (attributed to the
  // last user context, as the production TlbSimulator attributes them).
  Rng rng(23);
  std::vector<TraceRef> refs;
  for (int i = 0; i < 60000; ++i) {
    TraceRef ref{};
    ref.kind = (i % 4 == 3) ? TraceRef::kLoad : TraceRef::kIfetch;
    ref.bytes = 4;
    uint32_t roll = rng.Below(100);
    if (roll < 10) {
      ref.pid = kKernelPid;
      ref.addr = (roll < 5) ? (kKseg0 + rng.Below(1u << 16))  // Unmapped.
                            : rng.Below(40) << kPageShift;    // Kernel in kuseg.
    } else {
      ref.pid = static_cast<uint8_t>(1 + rng.Below(3));
      ref.addr = (rng.Below(40) << kPageShift) + rng.Below(1u << kPageShift);
    }
    refs.push_back(ref);
  }

  SweepConfig sweep_config = UnitSweepConfig();
  SweepEngine sweep(sweep_config);
  std::vector<std::unique_ptr<LruTlbOracle>> oracles;
  for (unsigned capacity : {1u, 2u, 4u, 8u}) {
    oracles.push_back(std::make_unique<LruTlbOracle>(capacity));
  }
  sweep.OnRefBatch(refs.data(), refs.size());
  for (auto& oracle : oracles) {
    oracle->OnRefBatch(refs.data(), refs.size());
  }
  const SweepResult& result = sweep.Finish();
  ASSERT_EQ(result.tlb_lru_misses.size(), 8u);
  size_t oracle = 0;
  for (unsigned capacity : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(capacity);
    EXPECT_EQ(result.tlb_lru_misses[capacity - 1], oracles[oracle++]->misses());
  }
  EXPECT_GT(result.tlb_refs, 0u);
  EXPECT_GT(result.tlb_cold_misses, 0u);
  // The curve is monotone in capacity.
  for (size_t c = 1; c < result.tlb_lru_misses.size(); ++c) {
    EXPECT_LE(result.tlb_lru_misses[c], result.tlb_lru_misses[c - 1]);
  }
}

// ---- Through the experiment harness, in every delivery mode ------------

WorkloadSpec UnitWorkload() {
  WorkloadSpec w;
  w.name = "unit";
  w.description = "tiny compute kernel";
  w.source = kBody;
  return w;
}

ExperimentOptions SweepOptionsBase() {
  ExperimentOptions options;
  options.sweep.icache.push_back({16, 1024, 16 * 1024});
  options.sweep.dcache.push_back({4, 1024, 16 * 1024});
  options.sweep.tlb_max_entries = 8;
  return options;
}

void ExpectSameSweep(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.icache.size(), b.icache.size());
  for (size_t i = 0; i < a.icache.size(); ++i) {
    EXPECT_EQ(a.icache[i].size_bytes, b.icache[i].size_bytes);
    EXPECT_EQ(a.icache[i].misses, b.icache[i].misses);
  }
  ASSERT_EQ(a.dcache.size(), b.dcache.size());
  for (size_t i = 0; i < a.dcache.size(); ++i) {
    EXPECT_EQ(a.dcache[i].misses, b.dcache[i].misses);
  }
  EXPECT_EQ(a.tlb_lru_misses, b.tlb_lru_misses);
  EXPECT_EQ(a.tlb_cold_misses, b.tlb_cold_misses);
  EXPECT_EQ(a.tlb_refs, b.tlb_refs);
  EXPECT_EQ(a.refs, b.refs);
  EXPECT_EQ(a.ifetches, b.ifetches);
  EXPECT_EQ(a.synthesized_refs, b.synthesized_refs);
  EXPECT_EQ(a.tlb.utlb_misses, b.tlb.utlb_misses);
  EXPECT_EQ(a.tlb.user_refs, b.tlb.user_refs);
}

TEST(SweepExperiment, LiveCaptureAndPipelinedModesAreBitIdentical) {
  WorkloadSpec w = UnitWorkload();

  // The reference: live analysis, synchronous transport, batched.
  ExperimentOptions live = SweepOptionsBase();
  live.pipeline = false;
  ExperimentResult reference = RunExperiment(w, live);
  ASSERT_TRUE(reference.sweep_ran);
  EXPECT_GT(reference.sweep.refs, 0u);
  EXPECT_EQ(reference.sweep.family_points, 10u);

  {
    SCOPED_TRACE("capture-replay");
    ExperimentOptions options = SweepOptionsBase();
    options.pipeline = false;
    options.capture_replay = true;
    ExperimentResult result = RunExperiment(w, options);
    ASSERT_TRUE(result.sweep_ran);
    ExpectSameSweep(result.sweep, reference.sweep);
  }
  {
    SCOPED_TRACE("pipelined (WRL_PIPELINE=1 equivalent)");
    ExperimentOptions options = SweepOptionsBase();
    options.pipeline = true;
    options.pipeline_depth = 3;
    ExperimentResult result = RunExperiment(w, options);
    ASSERT_TRUE(result.sweep_ran);
    ExpectSameSweep(result.sweep, reference.sweep);
  }
  {
    SCOPED_TRACE("pipelined capture-replay");
    ExperimentOptions options = SweepOptionsBase();
    options.pipeline = true;
    options.pipeline_depth = 3;
    options.capture_replay = true;
    ExperimentResult result = RunExperiment(w, options);
    ASSERT_TRUE(result.sweep_ran);
    ExpectSameSweep(result.sweep, reference.sweep);
  }
  {
    SCOPED_TRACE("per-ref shim (WRL_BATCH=0 equivalent)");
    ExperimentOptions options = SweepOptionsBase();
    options.pipeline = false;
    options.batch = false;
    ExperimentResult result = RunExperiment(w, options);
    ASSERT_TRUE(result.sweep_ran);
    ExpectSameSweep(result.sweep, reference.sweep);
  }
}

TEST(SweepEngine, ChunkParallelDecodeDeliversIdenticalSweep) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  TraceLog log;
  // Several chunks so multi-worker decode has real work to split.
  const size_t third = run.trace_words.size() / 3;
  log.Append(run.trace_words.data(), third);
  log.Append(run.trace_words.data() + third, third);
  log.Append(run.trace_words.data() + 2 * third, run.trace_words.size() - 2 * third);

  SweepConfig sweep_config = UnitSweepConfig();
  std::vector<SweepResult> results;
  for (unsigned workers : {1u, 3u}) {
    SCOPED_TRACE(workers);
    ReplaySource source;
    source.log = &log;
    source.kernel_table = &build.table;
    ReplayEngine engine(std::move(source));
    engine.Parse(workers);
    std::vector<ReplayEngine::Config> configs;
    configs.push_back(
        {"sweep", [&sweep_config] { return std::make_unique<SweepEngine>(sweep_config); }});
    std::vector<ReplayEngine::Outcome> outcomes = engine.Run(configs, {});
    auto* sweep = static_cast<SweepEngine*>(outcomes[0].sink.get());
    results.push_back(sweep->Finish());
  }
  ExpectSameSweep(results[0], results[1]);
}

// ---- Geometry-only replay variants are absorbed by the sweep -----------

TEST(SweepExperiment, GeometryOnlyVariantsAreSweptWithExactMissCounts) {
  WorkloadSpec w = UnitWorkload();

  ReplayVariant geometry;
  geometry.name = "cache8k";
  geometry.memsys.icache.size_bytes = 8 * 1024;
  geometry.memsys.dcache.size_bytes = 8 * 1024;
  ReplayVariant slowmem;
  slowmem.name = "slowmem";
  slowmem.memsys.read_miss_penalty = 30;

  // Without the sweep: two dedicated replays — the ground truth.
  ExperimentOptions plain;
  plain.replay_variants = {geometry, slowmem};
  ExperimentResult truth = RunExperiment(w, plain);
  ASSERT_EQ(truth.replays.size(), 2u);
  EXPECT_FALSE(truth.replays[0].swept);
  EXPECT_FALSE(truth.replays[1].swept);

  // With the sweep: the geometry-only variant is priced by the one pass
  // (exact miss counts, derived timing); slowmem still replays and stays
  // bit-identical to its dedicated replay above.
  ExperimentOptions swept;
  swept.replay_variants = {geometry, slowmem};
  swept.sweep.enabled = true;
  ExperimentResult result = RunExperiment(w, swept);
  ASSERT_TRUE(result.sweep_ran);
  ASSERT_EQ(result.replays.size(), 2u);
  EXPECT_EQ(result.replays[0].name, "cache8k");
  EXPECT_TRUE(result.replays[0].swept);
  EXPECT_EQ(result.replays[1].name, "slowmem");
  EXPECT_FALSE(result.replays[1].swept);

  EXPECT_EQ(result.replays[0].prediction.memsys_stats.icache_misses,
            truth.replays[0].prediction.memsys_stats.icache_misses);
  EXPECT_EQ(result.replays[0].prediction.memsys_stats.dcache_misses,
            truth.replays[0].prediction.memsys_stats.dcache_misses);
  EXPECT_EQ(result.replays[0].prediction.utlb_misses, truth.replays[0].prediction.utlb_misses);

  EXPECT_EQ(result.replays[1].prediction.memsys_stats.icache_misses,
            truth.replays[1].prediction.memsys_stats.icache_misses);
  EXPECT_EQ(result.replays[1].prediction.mem_stall_cycles,
            truth.replays[1].prediction.mem_stall_cycles);

  // The primary prediction is untouched by the sweep riding alongside.
  EXPECT_EQ(result.prediction.mem_stall_cycles, truth.prediction.mem_stall_cycles);
  EXPECT_EQ(result.prediction.utlb_misses, truth.prediction.utlb_misses);
}

TEST(SweepExperiment, RejectsNonPowerOfTwoFamilyLoudly) {
  WorkloadSpec w = UnitWorkload();
  ExperimentOptions options;
  options.sweep.icache.push_back({16, 3000, 8192});
  EXPECT_THROW(RunExperiment(w, options), Error);
}

}  // namespace
}  // namespace wrl
