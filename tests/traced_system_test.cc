// Full-system tracing tests: the instrumented kernel and workload run
// together, the per-process buffers drain into the in-kernel buffer on
// every kernel entry, the analysis program consumes it through the host
// port, and the trace-parsing library reconstructs the complete interleaved
// reference stream — validated with the paper's defensive checks (§4.3)
// and against the uninstrumented system's counters.
#include <gtest/gtest.h>

#include "kernel/system_build.h"
#include "support/strings.h"
#include "trace/parser.h"

namespace wrl {
namespace {

constexpr uint64_t kBudget = 400'000'000;

struct TracedRun {
  std::unique_ptr<SystemInstance> sys;
  TraceParserStats stats;
  std::vector<std::string> errors;
  uint64_t user_loads = 0;
  uint64_t user_stores = 0;
  uint64_t kernel_refs = 0;
};

SystemConfig BaseConfig(const std::string& program, Personality personality,
                        std::vector<DiskFile> files) {
  SystemConfig config;
  config.personality = personality;
  config.program_source = program;
  config.files = std::move(files);
  if (personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
  }
  return config;
}

TracedRun RunTraced(const std::string& program,
                    Personality personality = Personality::kUltrix,
                    std::vector<DiskFile> files = {}, uint32_t trace_buf_bytes = 8u << 20) {
  TracedRun run;
  SystemConfig config = BaseConfig(program, personality, std::move(files));
  config.tracing = true;
  config.clock_period = 200000 * 15;  // 1/15th rate: time-dilation scaling.
  config.trace_buf_bytes = trace_buf_bytes;
  run.sys = BuildSystem(config);

  TraceParser parser(&run.sys->kernel_table());
  parser.SetUserTable(1, &run.sys->user_table());
  if (personality == Personality::kMach) {
    parser.SetUserTable(2, &run.sys->server_table());
  }
  parser.SetInitialContext(kKernelPid);
  parser.SetRefSink([&](const TraceRef& ref) {
    if (ref.kernel) {
      ++run.kernel_refs;
    } else if (ref.kind == TraceRef::kLoad) {
      ++run.user_loads;
    } else if (ref.kind == TraceRef::kStore) {
      ++run.user_stores;
    }
  });
  run.sys->SetTraceSink([&parser](const uint32_t* words, size_t count) {
    parser.Feed(words, count);
  });
  RunResult r = run.sys->Run(kBudget);
  EXPECT_TRUE(r.halted) << "traced system did not halt; pc=" << Hex32(run.sys->machine().pc());
  EXPECT_EQ(run.sys->machine().halt_code(), 0u);
  parser.Finish();
  run.stats = parser.stats();
  run.errors = parser.errors();
  return run;
}

const char* kComputeProgram = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, table
        li   $t1, 0
        li   $t2, 64
fill:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        sw   $t1, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, fill
        nop
        li   $t1, 0
        li   $v0, 0
sum:    sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $v0, $v0, $t4
        addiu $t1, $t1, 1
        bne  $t1, $t2, sum
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
table:  .space 256
)";

TEST(TracedSystem, UltrixParsesCleanly) {
  TracedRun run = RunTraced(kComputeProgram);
  ASSERT_TRUE(run.errors.empty()) << run.errors.front();
  EXPECT_EQ(run.stats.validation_errors, 0u);
  EXPECT_EQ(run.sys->ProcessExitCode(1), 64u * 63u / 2u);
  EXPECT_GT(run.stats.user_ifetches, 500u);
  // Kernel trace here is just the exit syscall path: the UTLB handler — the
  // dominant kernel activity for this workload — is deliberately untraced.
  EXPECT_GT(run.stats.kernel_ifetches, 40u);
  EXPECT_EQ(run.user_stores, 64u + 1u);  // fill loop + prologue sw ra
  EXPECT_GE(run.stats.markers, 1u);
}

TEST(TracedSystem, UserInstructionCountMatchesUntracedRun) {
  // The reconstructed user instruction stream (in original addresses) must
  // have exactly as many instructions as the uninstrumented system executes
  // in user mode — the trace represents the *original* binary.
  TracedRun traced = RunTraced(kComputeProgram);
  ASSERT_TRUE(traced.errors.empty()) << traced.errors.front();

  SystemConfig config = BaseConfig(kComputeProgram, Personality::kUltrix, {});
  config.tracing = false;
  auto untraced = BuildSystem(config);
  RunResult r = untraced->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(traced.stats.user_ifetches, untraced->machine().user_instructions());
}

TEST(TracedSystem, TimeDilationInPaperBand) {
  // The traced system executes an order of magnitude more instructions for
  // the same work (paper: about fifteen).
  TracedRun traced = RunTraced(kComputeProgram);
  SystemConfig config = BaseConfig(kComputeProgram, Personality::kUltrix, {});
  config.tracing = false;
  auto untraced = BuildSystem(config);
  untraced->Run(kBudget);
  // Compare the workload's own lifetime (boot is untraced in both builds
  // and would otherwise dominate this tiny program).
  double dilation = static_cast<double>(traced.sys->ProcessCycles(1)) /
                    static_cast<double>(untraced->ProcessCycles(1));
  EXPECT_GT(dilation, 4.0);
  EXPECT_LT(dilation, 30.0);
}

TEST(TracedSystem, FileWorkloadWithDiskTracesCleanly) {
  std::vector<uint8_t> content(12000);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i * 7);
  }
  TracedRun run = RunTraced(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        move $a0, $v0
        la   $a1, buf
        li   $a2, 12000
        jal  read
        nop
        move $v0, $zero
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "data.in"
        .bss
buf:    .space 12288
)",
                            Personality::kUltrix, {{"data.in", content, 0}});
  ASSERT_TRUE(run.errors.empty()) << run.errors.front();
  EXPECT_EQ(run.stats.validation_errors, 0u);
  // Kernel trace dominates here: copy loops and the idle loop during disk
  // waits all appear.
  EXPECT_GT(run.stats.kernel_ifetches, run.stats.user_ifetches);
  EXPECT_GT(run.stats.idle_instructions, 0u);
}

TEST(TracedSystem, MachParsesCleanly) {
  std::vector<uint8_t> content(6000, 'm');
  TracedRun run = RunTraced(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        move $a0, $v0
        la   $a1, buf
        li   $a2, 6000
        jal  read
        nop
        move $v0, $zero
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "data.in"
        .bss
buf:    .space 8192
)",
                            Personality::kMach, {{"data.in", content, 0}});
  ASSERT_TRUE(run.errors.empty()) << run.errors.front();
  EXPECT_EQ(run.stats.validation_errors, 0u);
  // Two user address spaces contribute trace.
  EXPECT_GT(run.stats.user_ifetches, 0u);
  EXPECT_GT(run.sys->ContextSwitches(), 2u);
}

TEST(TracedSystem, SmallBufferForcesAnalysisModeSwitches) {
  // A small in-kernel buffer forces generation/analysis mode switches; the
  // trace must still parse cleanly across them (paper §4.3's "dirt" is
  // discarded, not corrupted).  The workload loops enough to fill several
  // buffers' worth of trace.
  const char* big_loop = R"(
        .globl main
main:
        la   $t0, cell
        li   $t1, 20000
        li   $v0, 0
bl_loop:
        sw   $t1, 0($t0)
        lw   $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t1, $t1, -1
        bgtz $t1, bl_loop
        nop
        li   $v0, 42
        jr   $ra
        nop
        .data
cell:   .word 0
)";
  TracedRun run = RunTraced(big_loop, Personality::kUltrix, {}, 192 * 1024);
  ASSERT_TRUE(run.errors.empty()) << run.errors.front();
  EXPECT_GT(run.sys->AnalysisSwitches(), 0u);
  EXPECT_EQ(run.sys->ProcessExitCode(1), 42u);
}

TEST(TracedSystem, DefensiveChecksCatchCorruption) {
  // Corrupt one word of the drained stream: the redundancy in the format
  // (known block lengths, table membership) must flag it.
  SystemConfig config = BaseConfig(kComputeProgram, Personality::kUltrix, {});
  config.tracing = true;
  config.clock_period = 200000 * 15;
  auto sys = BuildSystem(config);
  std::vector<uint32_t> words;
  sys->SetTraceSink([&](const uint32_t* w, size_t n) { words.insert(words.end(), w, w + n); });
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  ASSERT_GT(words.size(), 100u);

  auto parse = [&](const std::vector<uint32_t>& stream) {
    TraceParser parser(&sys->kernel_table());
    parser.SetUserTable(1, &sys->user_table());
    parser.SetInitialContext(kKernelPid);
    parser.Feed(stream);
    parser.Finish();
    return parser.stats().validation_errors;
  };
  EXPECT_EQ(parse(words), 0u);

  // Find a user data word (follows a key whose block has memory ops) and a
  // key word to corrupt.  Dropping a *data* word desynchronizes the stream;
  // flipping a *key* fails the address-space membership check.  (A dropped
  // key of a dataless block is the one corruption the redundancy cannot
  // see — the paper promises "very high probability", not certainty.)
  size_t data_index = 0;
  size_t key_index = 0;
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    const TraceBlockInfo* info = sys->user_table().Find(words[i]);
    if (info != nullptr) {
      key_index = i;
      if (!info->mem_ops.empty() && data_index == 0) {
        data_index = i + 1;
      }
    }
  }
  ASSERT_GT(data_index, 0u);
  ASSERT_GT(key_index, 0u);

  std::vector<uint32_t> dropped = words;
  dropped.erase(dropped.begin() + static_cast<long>(data_index));
  EXPECT_GT(parse(dropped), 0u);

  std::vector<uint32_t> flipped = words;
  flipped[key_index] ^= 0x00300000;  // No longer a valid key.
  EXPECT_GT(parse(flipped), 0u);
}

TEST(TracedSystem, ConsoleOutputIdenticalToUntraced) {
  const char* program = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $a0, 1
        la   $a1, msg
        li   $a2, 26
        jal  write
        nop
        li   $v0, 0
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
msg:    .asciiz "abcdefghijklmnopqrstuvwxyz"
)";
  TracedRun traced = RunTraced(program);
  SystemConfig config = BaseConfig(program, Personality::kUltrix, {});
  config.tracing = false;
  auto untraced = BuildSystem(config);
  untraced->Run(kBudget);
  EXPECT_EQ(traced.sys->ConsoleOutput(), untraced->ConsoleOutput());
  EXPECT_EQ(traced.sys->ConsoleOutput(), "abcdefghijklmnopqrstuvwxyz");
}

}  // namespace
}  // namespace wrl
