// Unit tests for the wrlstats observability layer: the counter registry,
// the log-scale histogram, the event timeline, and the regression check
// that the registry snapshot agrees with components' existing accessors.
#include "stats/stats.h"

#include <gtest/gtest.h>

#include "stats/events.h"
#include "support/error.h"
#include "support/json.h"
#include "tests/test_util.h"
#include "trace/parser.h"

namespace wrl {
namespace {

TEST(Counter, BehavesLikeUint64) {
  Counter c;
  EXPECT_EQ(c, 0u);
  ++c;
  c += 10;
  EXPECT_EQ(c, 11u);
  --c;
  c -= 5;
  EXPECT_EQ(c.value(), 5u);
  c = 42;
  EXPECT_EQ(static_cast<uint64_t>(c) >> 1, 21u);
  c.Reset();
  EXPECT_EQ(c, 0u);
}

TEST(Histogram, Log2Bucketing) {
  Histogram h;
  h.Record(0);  // Bucket 0: exact zeros.
  h.Record(1);  // Bucket 1: [1, 2).
  h.Record(2);  // Bucket 2: [2, 4).
  h.Record(3);
  h.Record(4);  // Bucket 3: [4, 8).
  h.Record(1024);  // Bucket 11: [1024, 2048).
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1034u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.buckets()[11], 1u);
  EXPECT_EQ(h.UsedBuckets(), 12u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.UsedBuckets(), 0u);
}

TEST(StatsRegistry, RegisterLookupSnapshotReset) {
  StatsRegistry registry;
  Counter counter = 7;
  uint64_t raw = 3;
  double gauge_value = 1.5;
  registry.AddCounter("a.counter", &counter);
  registry.AddCounter("a.raw", &raw);
  registry.AddGauge("a.gauge", [&] { return gauge_value; });
  Histogram* owned = registry.AddHistogram("a.hist");
  owned->Record(16);

  EXPECT_TRUE(registry.Has("a.counter"));
  EXPECT_FALSE(registry.Has("missing"));
  EXPECT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"a.counter", "a.gauge", "a.hist", "a.raw"}));
  EXPECT_EQ(registry.CounterValue("a.counter"), 7u);
  EXPECT_EQ(registry.CounterValue("a.raw"), 3u);
  EXPECT_THROW(registry.CounterValue("missing"), Error);
  EXPECT_THROW(registry.CounterValue("a.gauge"), Error);

  // The snapshot is a point-in-time copy: later mutations don't show.
  StatsSnapshot snap = registry.Snapshot();
  counter += 100;
  gauge_value = 9;
  EXPECT_EQ(snap.CounterValue("a.counter"), 7u);
  EXPECT_EQ(snap.CounterValue("a.raw"), 3u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("a.gauge"), 1.5);
  const StatValue* hist = snap.Find("a.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, StatValue::Kind::kHistogram);
  EXPECT_EQ(hist->hist_count, 1u);
  EXPECT_EQ(hist->hist_sum, 16u);

  registry.ResetAll();
  EXPECT_EQ(counter, 0u);
  EXPECT_EQ(raw, 0u);
  EXPECT_EQ(owned->count(), 0u);
}

TEST(StatsRegistry, ReRegisteringReplacesBinding) {
  StatsRegistry registry;
  Counter first = 1;
  Counter second = 2;
  registry.AddCounter("x", &first);
  registry.AddCounter("x", &second);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.CounterValue("x"), 2u);
}

TEST(StatsSnapshot, WriteJsonIsWellFormed) {
  StatsRegistry registry;
  Counter counter = 5;
  registry.AddCounter("c", &counter);
  registry.AddGauge("g", [] { return 2.25; });
  registry.AddHistogram("h")->Record(3);
  StatsSnapshot snap = registry.Snapshot();

  JsonWriter writer(0);
  snap.WriteJson(writer);
  JsonValue v = ParseJson(writer.TakeString());
  EXPECT_DOUBLE_EQ(v.At("c").number, 5.0);
  EXPECT_DOUBLE_EQ(v.At("g").number, 2.25);
  EXPECT_DOUBLE_EQ(v.At("h").At("count").number, 1.0);
  EXPECT_DOUBLE_EQ(v.At("h").At("mean").number, 3.0);
  EXPECT_TRUE(v.At("h").At("log2_buckets").IsArray());
}

TEST(EventRecorder, NestingAndCompletionOrder) {
  EventRecorder recorder;
  uint64_t cycles = 100;
  recorder.SetCycleSource([&] { return cycles; });
  recorder.Begin("outer", "phase");
  cycles = 150;
  recorder.Begin("inner", "phase");
  cycles = 175;
  EXPECT_EQ(recorder.open_scopes(), 2u);
  recorder.End();  // inner
  recorder.Instant("tick", "event", "n", 7);
  cycles = 200;
  recorder.End();  // outer
  EXPECT_EQ(recorder.open_scopes(), 0u);

  // Completion order: inner closes first.
  ASSERT_EQ(recorder.events().size(), 3u);
  const TimelineEvent& inner = recorder.events()[0];
  const TimelineEvent& tick = recorder.events()[1];
  const TimelineEvent& outer = recorder.events()[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.cycle_start, 150u);
  EXPECT_EQ(inner.cycle_dur, 25u);
  EXPECT_TRUE(tick.instant);
  EXPECT_TRUE(tick.has_arg);
  EXPECT_EQ(tick.arg_name, "n");
  EXPECT_EQ(tick.arg, 7u);
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.cycle_start, 100u);
  EXPECT_EQ(outer.cycle_dur, 100u);
}

TEST(EventRecorder, ChromeTraceJsonIsWellFormed) {
  EventRecorder recorder;
  {
    EventRecorder::Scope scope(&recorder, "build", "phase");
    recorder.Instant("drain", "trace", "words", 512);
  }
  {
    EventRecorder::Scope noop(nullptr, "ignored");  // Null recorder: no-op.
  }
  JsonValue v = ParseJson(recorder.ChromeTraceJson());
  const JsonValue& events = v.At("traceEvents");
  ASSERT_TRUE(events.IsArray());
  ASSERT_EQ(events.array.size(), 2u);
  EXPECT_EQ(events.array[0].At("name").string, "drain");
  EXPECT_EQ(events.array[0].At("ph").string, "i");
  EXPECT_DOUBLE_EQ(events.array[0].At("args").At("words").number, 512.0);
  EXPECT_EQ(events.array[1].At("name").string, "build");
  EXPECT_EQ(events.array[1].At("ph").string, "X");
  EXPECT_TRUE(events.array[1].Has("dur"));
}

// Regression: the registry snapshot of a run machine agrees with the
// existing accessors — converting the members to Counter changed nothing.
TEST(StatsIntegration, MachineAccessorsAgreeWithSnapshot) {
  auto machine = RunBareProgram(R"(
        .globl _start
_start: li   $t0, 10
loop:   addiu $t0, $t0, -1
        bgtz $t0, loop
        nop
        li   $t9, 0xbfd00004     # HALT register
        sw   $zero, 0($t9)
spin:   b    spin
        nop
)");
  StatsRegistry registry;
  machine->RegisterStats(registry);
  StatsSnapshot snap = registry.Snapshot();
  EXPECT_GT(machine->cycles(), 0u);
  EXPECT_EQ(snap.CounterValue("machine.cycles"), machine->cycles());
  EXPECT_EQ(snap.CounterValue("machine.instructions"), machine->instructions());
  EXPECT_EQ(snap.CounterValue("machine.user_instructions"), machine->user_instructions());
  EXPECT_EQ(snap.CounterValue("machine.kernel_instructions"), machine->kernel_instructions());
  EXPECT_EQ(snap.CounterValue("machine.idle_instructions"), machine->idle_instructions());
  EXPECT_EQ(snap.CounterValue("machine.utlb_miss_exceptions"),
            machine->utlb_miss_exceptions());
}

// Same agreement check for the trace parser over a synthetic stream.
TEST(StatsIntegration, ParserStatsAgreeWithSnapshot) {
  TraceInfoTable table;
  table.Add(0x10000010, {0x00400000, 2, 0, {}, 0});
  table.Add(0x10000040, {0x00400100, 3, 0, {{1, false, 4}}, 0});

  TraceParser parser(&table);
  parser.SetUserTable(1, &table);
  parser.SetInitialContext(1);
  StatsRegistry registry;
  parser.RegisterStats(registry);
  parser.Feed({0x10000010, 0x10000040, 0x00500000});
  parser.Finish();

  StatsSnapshot snap = registry.Snapshot();
  const TraceParserStats& s = parser.stats();
  EXPECT_GT(s.refs, 0u);
  EXPECT_EQ(snap.CounterValue("parser.words"), s.words);
  EXPECT_EQ(snap.CounterValue("parser.blocks"), s.blocks);
  EXPECT_EQ(snap.CounterValue("parser.refs"), s.refs);
  EXPECT_EQ(snap.CounterValue("parser.ifetches"), s.ifetches);
  EXPECT_EQ(snap.CounterValue("parser.loads"), s.loads);
  EXPECT_EQ(snap.CounterValue("parser.validation_errors"), s.validation_errors);
}

}  // namespace
}  // namespace wrl
