// Defensive-tracing tests (§4.3) against the *batched* parser: corrupt and
// truncated streams must produce counted validation errors — never a crash
// — and the batch delivery path must agree with the per-ref path ref for
// ref on damaged input too.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/parser.h"

namespace wrl {
namespace {

constexpr uint32_t kKeyA = 0x10000010;  // 2 instrs, no mem ops.
constexpr uint32_t kKeyB = 0x10000040;  // 3 instrs, load@1.
constexpr uint32_t kKeyC = 0x10000080;  // 4 instrs, store@0, load@2.

TraceInfoTable MakeTable() {
  TraceInfoTable table;
  table.Add(kKeyA, {0x00400000, 2, 0, {}, 0});
  table.Add(kKeyB, {0x00400100, 3, 0, {{1, false, 4}}, 0});
  table.Add(kKeyC, {0x00400200, 4, 0, {{0, true, 4}, {2, false, 1}}, 0});
  return table;
}

// Batch sink that records every delivered ref and the batch sizes.
class RecordingSink : public RefBatchSink {
 public:
  void OnRefBatch(const TraceRef* refs, size_t count) override {
    refs_.insert(refs_.end(), refs, refs + count);
    batch_sizes_.push_back(count);
  }

  std::vector<TraceRef> refs_;
  std::vector<size_t> batch_sizes_;
};

struct Outcome {
  std::vector<TraceRef> refs;
  TraceParserStats stats;
};

// Parses `words` through the batched path with a deliberately tiny batch so
// corrupt words land on batch boundaries too.
Outcome ParseBatched(const std::vector<uint32_t>& words, size_t batch_refs = 3) {
  static TraceInfoTable table = MakeTable();
  Outcome out;
  TraceParser parser(&table);
  parser.SetUserTable(1, &table);
  parser.SetInitialContext(1);
  RecordingSink sink;
  parser.SetBatchSink(&sink, batch_refs);
  parser.Feed(words);
  parser.Finish();
  out.refs = std::move(sink.refs_);
  out.stats = parser.stats();
  return out;
}

Outcome ParsePerRef(const std::vector<uint32_t>& words) {
  static TraceInfoTable table = MakeTable();
  Outcome out;
  TraceParser parser(&table);
  parser.SetUserTable(1, &table);
  parser.SetInitialContext(1);
  parser.SetRefSink([&](const TraceRef& r) { out.refs.push_back(r); });
  parser.Feed(words);
  parser.Finish();
  out.stats = parser.stats();
  return out;
}

void ExpectSameRefs(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.refs.size(), b.refs.size());
  for (size_t i = 0; i < a.refs.size(); ++i) {
    EXPECT_EQ(a.refs[i].kind, b.refs[i].kind) << i;
    EXPECT_EQ(a.refs[i].addr, b.refs[i].addr) << i;
    EXPECT_EQ(a.refs[i].bytes, b.refs[i].bytes) << i;
    EXPECT_EQ(a.refs[i].pid, b.refs[i].pid) << i;
    EXPECT_EQ(a.refs[i].kernel, b.refs[i].kernel) << i;
  }
  EXPECT_EQ(a.stats.refs, b.stats.refs);
  EXPECT_EQ(a.stats.validation_errors, b.stats.validation_errors);
}

TEST(ParserDefense, TruncatedTraceCountsError) {
  // The stream ends while block B still owes its data word.
  Outcome out = ParseBatched({kKeyA, kKeyB});
  EXPECT_GE(out.stats.validation_errors, 1u);
  // The fetches emitted before the truncation point still arrived.
  EXPECT_GE(out.refs.size(), 2u);
}

TEST(ParserDefense, CorruptBlockKeyCountsErrorAndContinues) {
  // A key that matches no table entry; parsing resumes at the next block.
  Outcome out = ParseBatched({kKeyA, 0x13572468, kKeyA});
  EXPECT_GE(out.stats.validation_errors, 1u);
  // Both intact A blocks (2 fetches each) were reconstructed.
  EXPECT_EQ(out.refs.size(), 4u);
}

TEST(ParserDefense, WrongMemOpCountDesynchronizes) {
  // B's data word was dropped, so the next key is misconsumed as data and
  // the stream desynchronizes — the membership check flags it.
  Outcome out = ParseBatched({kKeyB, kKeyA, 0x00500000});
  EXPECT_GE(out.stats.validation_errors, 1u);
}

TEST(ParserDefense, FinishMidBlockCountsError) {
  // C delivered only the first of its two data words before Finish().
  Outcome out = ParseBatched({kKeyC, 0x00500000});
  EXPECT_GE(out.stats.validation_errors, 1u);
  // Everything up to the missing load was still delivered.
  EXPECT_GE(out.refs.size(), 2u);
}

TEST(ParserDefense, FinishFlushesPartialBatch) {
  static TraceInfoTable table = MakeTable();
  TraceParser parser(&table);
  parser.SetUserTable(1, &table);
  parser.SetInitialContext(1);
  RecordingSink sink;
  parser.SetBatchSink(&sink);  // Default (large) capacity: nothing flushes early.
  parser.Feed({kKeyA});
  EXPECT_TRUE(sink.refs_.empty());
  parser.Finish();
  EXPECT_EQ(sink.refs_.size(), 2u);
}

TEST(ParserDefense, BatchedMatchesPerRefOnDamagedStreams) {
  const std::vector<std::vector<uint32_t>> streams = {
      {kKeyA, kKeyB},                        // truncated
      {kKeyA, 0x13572468, kKeyA},            // corrupt key
      {kKeyB, kKeyA, 0x00500000},            // dropped data word
      {kKeyC, 0x00500000},                   // finish mid-block
      {kKeyC, 0x00500000, 0x00500010, kKeyB, 0x00600000, kKeyA},  // healthy
  };
  for (const auto& words : streams) {
    for (size_t batch_refs : {size_t{1}, size_t{2}, size_t{3}, kRefBatchCapacity}) {
      SCOPED_TRACE("stream of " + std::to_string(words.size()) + " words, batch " +
                   std::to_string(batch_refs));
      ExpectSameRefs(ParseBatched(words, batch_refs), ParsePerRef(words));
    }
  }
}

}  // namespace
}  // namespace wrl
