// Register-scavenging tests: the liveness-driven rewriter shrinks the
// instrumented text without changing a single reconstructed reference, the
// wrlverify scavenge pass proves every elision/window safe and catches
// seeded unsafe mutations with pc-accurate diagnostics, and the static
// dilation prediction reconciles exactly with wrlprof's dynamic
// OverheadInsts/TraceWords accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "dataflow/dilation.h"
#include "epoxie/epoxie.h"
#include "harness/bare_runtime.h"
#include "harness/experiment.h"
#include "isa/isa.h"
#include "prof/prof.h"
#include "trace/abi.h"
#include "trace/parser.h"
#include "verify/verify.h"
#include "workloads/workloads.h"

namespace wrl {
namespace {

// A body with one provable header-save elision (main's continuation block
// writes $ra before the return reads it) and scavenged shadow windows
// (leaf steals $t8/$t9 while $v0/$v1 are provably dead), runnable bare.
constexpr const char* kScavBody = R"(
        .globl main
        .globl leaf
main:   addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        jal  leaf
        nop
        addu $t1, $zero, $zero
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
leaf:   la   $t0, buf
        li   $t8, 7
        addu $t9, $t8, $t8
        sw   $t9, 0($t0)
        addu $v1, $zero, $zero
        lw   $v0, 0($t0)
        jr   $ra
        nop
        .data
buf:    .space 16
)";

struct Built {
  EpoxieConfig config;
  ObjectFile orig;
  InstrumentResult res;
};

Built Build(bool scavenge, const char* src = kScavBody) {
  Built b;
  b.config.scavenge = scavenge;
  b.orig = Assemble("body.s", src);
  b.res = Instrument(b.orig, b.config);
  return b;
}

VerifyReport Verify(const Built& b) {
  VerifyOptions options;
  options.epoxie = b.config;
  return VerifyInstrumentedObject(b.orig, b.res, options);
}

// Byte offset of the first text word equal to `raw` (must exist).
uint32_t FindWord(const ObjectFile& obj, uint32_t raw) {
  for (uint32_t off = 0; off < obj.NumTextWords() * 4; off += 4) {
    if (obj.TextWord(off) == raw) {
      return off;
    }
  }
  ADD_FAILURE() << "word not found: " << DisassembleWord(raw, 0);
  return 0;
}

// Patches the unique original word `raw` to `patched` in BOTH the original
// and the instrumented text — the instrumentation stays internally
// consistent, but decisions the rewriter proved against the old original
// become retroactively unsafe.
void PatchBoth(Built& b, uint32_t raw, uint32_t patched) {
  b.orig.SetTextWord(FindWord(b.orig, raw), patched);
  b.res.object.SetTextWord(FindWord(b.res.object, raw), patched);
}

// The scratch register some scavenged window borrowed, recovered from the
// instrumented text (a shadow-slot load/store through a non-stolen
// register).
int FindScavScratch(const ObjectFile& iobj) {
  for (uint32_t off = 0; off < iobj.NumTextWords() * 4; off += 4) {
    Inst in = Decode(iobj.TextWord(off));
    if ((in.op == Op::kLw || in.op == Op::kSw) && in.rs == kAt && !IsStolenReg(in.rt) &&
        in.rt != kRa && in.rt != kZero && in.imm >= static_cast<int16_t>(kBkShadow0) &&
        in.imm < static_cast<int16_t>(kBkShadow0 + 12)) {
      return in.rt;
    }
  }
  return -1;
}

// ---- The rewrite itself --------------------------------------------------

TEST(Scavenge, ShrinksTextAndPredictedDilation) {
  Built on = Build(true);
  Built off = Build(false);

  EXPECT_EQ(on.res.elided_ra_saves, 1u);  // Exactly main's continuation block.
  EXPECT_GE(on.res.scavenged_windows, 2u);
  EXPECT_EQ(off.res.elided_ra_saves, 0u);
  EXPECT_EQ(off.res.scavenged_windows, 0u);
  EXPECT_LT(on.res.instrumented_text_words, off.res.instrumented_text_words);
  EXPECT_EQ(on.res.original_text_words, off.res.original_text_words);

  // The static block maps describe the same original shape — only the
  // per-block instrumented size shrinks.
  ASSERT_EQ(on.res.blocks.size(), off.res.blocks.size());
  for (size_t i = 0; i < on.res.blocks.size(); ++i) {
    EXPECT_EQ(on.res.blocks[i].orig_offset, off.res.blocks[i].orig_offset);
    EXPECT_EQ(on.res.blocks[i].num_insts, off.res.blocks[i].num_insts);
    EXPECT_EQ(on.res.blocks[i].mem_ops.size(), off.res.blocks[i].mem_ops.size());
    EXPECT_LE(on.res.blocks[i].instr_words, off.res.blocks[i].instr_words);
  }

  DilationPrediction pon = PredictDilation(on.orig, on.res);
  DilationPrediction poff = PredictDilation(off.orig, off.res);
  EXPECT_LT(pon.Growth(), poff.Growth());
  EXPECT_EQ(pon.trace_words_per_visit, poff.trace_words_per_visit);
  EXPECT_GT(pon.ra_dead_leaders, 0u);
}

TEST(Scavenge, VerifyProvesTheScavengedObject) {
  Built b = Build(true);
  ASSERT_GT(b.res.elided_ra_saves + b.res.scavenged_windows, 0u);
  VerifyReport report = Verify(b);
  for (const VerifyFinding& f : report.findings) {
    ADD_FAILURE() << VerifySeverityName(f.severity) << " " << VerifyPassName(f.pass) << " pc=0x"
                  << std::hex << f.pc << ": " << f.message;
  }
  EXPECT_TRUE(report.ok());
}

// ---- Seeded unsafe mutations --------------------------------------------

TEST(ScavengeMutation, RaLiveAtElidedLeaderCaught) {
  Built b = Build(true);
  ASSERT_EQ(b.res.elided_ra_saves, 1u);
  // The elided block's leader: `addu $t1, $zero, $zero` at original word 4.
  // Flipped to read $ra, the block now consumes $ra before the `lw $ra`
  // kill — the elision the rewriter proved is retroactively unsafe.
  PatchBoth(b, EncodeRType(Op::kAddu, kZero, kZero, kT1, 0),
            EncodeRType(Op::kAddu, kRa, kZero, kT1, 0));

  VerifyReport report = Verify(b);
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kScavenge);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, VerifySeverity::kError);
  EXPECT_NE(f->message.find("save elided but $ra is live"), std::string::npos) << f->message;
  EXPECT_EQ(f->symbol, "main");
  // pc-accurate: the finding points at the elided block's header.  With the
  // save gone the block key sits two words after the header, so the header
  // is at key_offset - 8 in the instrumented text.
  const BlockStatic* elided = nullptr;
  for (const BlockStatic& bs : b.res.blocks) {
    if (bs.orig_offset == 16) elided = &bs;
  }
  ASSERT_NE(elided, nullptr);
  EXPECT_EQ(f->pc, elided->key_offset - 8);
}

TEST(ScavengeMutation, ScratchLiveAcrossWindowCaught) {
  Built b = Build(true);
  ASSERT_GE(b.res.scavenged_windows, 1u);
  int scratch = FindScavScratch(b.res.object);
  ASSERT_GE(scratch, 0) << "no scavenged shadow window in the instrumented text";
  // `addu $v1, $zero, $zero` sits right after leaf's stolen-register
  // window.  Flipped to read the borrowed scratch, the scratch is live
  // across the window it was borrowed for.
  PatchBoth(b, EncodeRType(Op::kAddu, kZero, kZero, kV1, 0),
            EncodeRType(Op::kAddu, static_cast<uint8_t>(scratch), kZero, kV1, 0));

  VerifyReport report = Verify(b);
  const VerifyFinding* f = report.FirstForPass(VerifyPass::kScavenge);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, VerifySeverity::kError);
  EXPECT_NE(f->message.find("live across the window"), std::string::npos) << f->message;
  EXPECT_EQ(f->symbol, "leaf");
  // The diagnostic names the original pc of a window inside leaf (original
  // words 8..12 → byte offsets 0x20..0x30).
  EXPECT_NE(f->message.find("original pc 0x"), std::string::npos) << f->message;
}

// ---- Dynamic bit-identity ------------------------------------------------

TEST(Scavenge, BareReferenceStreamBitIdentical) {
  BareBuildOptions on_opts;
  on_opts.scavenge = true;
  BareBuildOptions off_opts;
  off_opts.scavenge = false;
  BareBuild on = BuildBareTraced(kScavBody, on_opts);
  BareBuild off = BuildBareTraced(kScavBody, off_opts);
  EXPECT_LT(on.instrument_result.instrumented_text_words,
            off.instrument_result.instrumented_text_words);

  BareComparison con = CompareBareTrace(on);
  BareComparison coff = CompareBareTrace(off);
  ASSERT_TRUE(con.parser_errors.empty()) << con.parser_errors.front();
  ASSERT_TRUE(coff.parser_errors.empty()) << coff.parser_errors.front();
  ASSERT_FALSE(con.parsed.empty());

  // The reconstructed reference stream does not change by one bit.
  ASSERT_EQ(con.parsed.size(), coff.parsed.size());
  for (size_t i = 0; i < con.parsed.size(); ++i) {
    const TraceRef& a = con.parsed[i];
    const TraceRef& b = coff.parsed[i];
    ASSERT_EQ(a.kind, b.kind) << "ref " << i;
    ASSERT_EQ(a.addr, b.addr) << "ref " << i;
    ASSERT_EQ(a.bytes, b.bytes) << "ref " << i;
    ASSERT_EQ(a.pid, b.pid) << "ref " << i;
  }
}

// ---- Static prediction vs wrlprof's dynamic accounting -------------------

TEST(Scavenge, StaticDilationMatchesProfiledRun) {
  BareBuild build = BuildBareTraced(kScavBody);
  BareTraceRun run = RunBareTraced(build);
  ASSERT_FALSE(run.trace_words.empty());

  TraceProfiler prof;
  prof.AddTable(kKernelPid, &build.table);
  TraceParser parser(&build.table);
  parser.SetInitialContext(kKernelPid);
  parser.SetBatchSink(&prof);
  parser.Feed(run.trace_words.data(), run.trace_words.size());
  parser.Finish();
  ASSERT_TRUE(parser.errors().empty()) << parser.errors().front();
  Profile profile = prof.Finish();
  ASSERT_GT(profile.totals.block_entries, 0u);
  EXPECT_EQ(profile.totals.unattributed_insts, 0u);
  EXPECT_EQ(profile.totals.unattributed_data, 0u);

  // Weight the purely static per-block prediction with the dynamic entry
  // counts: it must land exactly on wrlprof's trace-volume and overhead
  // reconciliation.
  DilationPrediction pred =
      PredictDilation(Assemble("body.s", kScavBody), build.instrument_result);
  uint64_t want_words = 0;
  uint64_t want_overhead = 0;
  for (const BlockProfile& b : profile.blocks) {
    const BlockDilation* bd = nullptr;
    for (const BlockDilation& cand : pred.blocks) {
      if (build.body_text_begin + cand.orig_offset == b.addr) bd = &cand;
    }
    ASSERT_NE(bd, nullptr) << "no static prediction for block 0x" << std::hex << b.addr;
    EXPECT_EQ(bd->num_insts, b.num_insts);
    EXPECT_EQ(bd->instr_words, b.instr_words);
    want_words += b.entries * bd->TraceWordsPerEntry();
    want_overhead += b.entries * bd->OverheadInstsPerEntry();
  }
  EXPECT_EQ(want_words, profile.totals.trace_words);
  EXPECT_EQ(want_overhead, profile.totals.overhead_insts);
}

// ---- Whole-system modes --------------------------------------------------

TEST(ScavengeSystem, UserStreamBitIdenticalAndDilationShrinks) {
  WorkloadSpec workload = PaperWorkload("sed", 0.05);
  ExperimentOptions on;
  on.profile = true;
  on.scavenge = true;
  ExperimentOptions off = on;
  off.scavenge = false;

  ExperimentResult ron = RunExperiment(workload, on);
  ExperimentResult roff = RunExperiment(workload, off);

  // The workload computes the same result either way, and both traces
  // parse without a single defense tripping.
  EXPECT_EQ(ron.exit_code, roff.exit_code);
  EXPECT_EQ(ron.parser_errors, 0u);
  EXPECT_EQ(roff.parser_errors, 0u);
  // The measured (untraced) half is untouched by an instrumentation knob.
  EXPECT_EQ(ron.measured_cycles, roff.measured_cycles);

  // The *user-space* reference stream is bit-identical: scavenging changes
  // how much inserted code the traced machine executes — which moves the
  // dilated kernel's interrupt/drain timing — but never what the workload's
  // reconstructed references are.  (Full-stream identity at the object
  // level is pinned by BareReferenceStreamBitIdentical.)
  struct UserTally {
    uint64_t entries = 0, insts = 0, loads = 0, stores = 0, overhead = 0;
  };
  auto user = [](const Profile& p) {
    UserTally t;
    for (const BlockProfile& b : p.blocks) {
      if (b.pid == kKernelPid) continue;
      t.entries += b.entries;
      t.insts += b.insts;
      t.loads += b.loads;
      t.stores += b.stores;
      t.overhead += b.OverheadInsts();
    }
    return t;
  };
  UserTally uon = user(ron.profile);
  UserTally uoff = user(roff.profile);
  ASSERT_GT(uon.entries, 0u);
  EXPECT_EQ(uon.entries, uoff.entries);
  EXPECT_EQ(uon.insts, uoff.insts);
  EXPECT_EQ(uon.loads, uoff.loads);
  EXPECT_EQ(uon.stores, uoff.stores);
  // Identical stream, smaller instrumented bodies: the dilation charged to
  // the workload strictly shrinks.
  EXPECT_LT(uon.overhead, uoff.overhead);

  // wrlstats: text growth measurably lower, and the scavenge counters
  // account for why.
  EXPECT_LT(ron.stats.GaugeValue("traced.epoxie.workload_text_growth"),
            roff.stats.GaugeValue("traced.epoxie.workload_text_growth"));
  EXPECT_LT(ron.stats.GaugeValue("traced.epoxie.kernel_text_growth"),
            roff.stats.GaugeValue("traced.epoxie.kernel_text_growth"));
  EXPECT_GT(ron.stats.CounterValue("traced.epoxie.elided_ra_saves"), 0u);
  EXPECT_EQ(roff.stats.CounterValue("traced.epoxie.elided_ra_saves"), 0u);
  EXPECT_EQ(roff.stats.CounterValue("traced.epoxie.scavenged_windows"), 0u);
}

TEST(ScavengeSystem, CaptureReplayAndPipelineMatchLive) {
  WorkloadSpec workload = PaperWorkload("sed", 0.05);
  ExperimentOptions live;
  live.profile = true;
  live.scavenge = true;
  live.pipeline = false;
  ExperimentResult rlive = RunExperiment(workload, live);
  ASSERT_GT(rlive.profile.totals.refs, 0u);

  ExperimentOptions capture = live;
  capture.capture_replay = true;
  ExperimentResult rcap = RunExperiment(workload, capture);

  ExperimentOptions piped = live;
  piped.pipeline = true;
  ExperimentResult rpipe = RunExperiment(workload, piped);

  EXPECT_EQ(rlive.profile.CanonicalJson(), rcap.profile.CanonicalJson());
  EXPECT_EQ(rlive.profile.CanonicalJson(), rpipe.profile.CanonicalJson());
  EXPECT_EQ(rlive.prediction.PredictedCycles(), rcap.prediction.PredictedCycles());
  EXPECT_EQ(rlive.prediction.PredictedCycles(), rpipe.prediction.PredictedCycles());
}

}  // namespace
}  // namespace wrl
