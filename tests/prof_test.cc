// Tests for the trace-attribution profiler (src/prof): cursor-mirror
// attribution on synthetic streams, working-set/page math, symbolization
// edge cases, the wrlprof/1 payload schema, and the bit-identity contract —
// the same capture profiled live, replayed, per-ref, and through the
// experiment harness at any jobs count must produce byte-identical
// profiles.
#include "prof/prof.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/bare_runtime.h"
#include "harness/experiment.h"
#include "harness/replay_engine.h"
#include "harness/report.h"
#include "support/json.h"
#include "trace/trace_log.h"
#include "workloads/workloads.h"

namespace wrl {
namespace {

// ---- Synthetic streams -------------------------------------------------
//
// The profiler consumes TraceRefs, so synthetic tests feed the parser's
// output shape directly: per the parser's emission contract, an ifetch run
// is contiguous up to (and including) a memory instruction's fetch, then
// the data reference arrives, then the run resumes.

TraceRef Ifetch(uint32_t addr, uint8_t pid = 1) {
  return {TraceRef::kIfetch, addr, 4, pid, pid == kKernelPid, false};
}
TraceRef Load(uint32_t addr, uint8_t pid = 1) {
  return {TraceRef::kLoad, addr, 4, pid, pid == kKernelPid, false};
}
TraceRef Store(uint32_t addr, uint8_t pid = 1) {
  return {TraceRef::kStore, addr, 4, pid, pid == kKernelPid, false};
}

// Two user blocks: A = 2 insts, no mem ops; B = 3 insts, load at index 1.
TraceInfoTable MakeUserTable() {
  TraceInfoTable table;
  table.Add(0x10000010, {0x00400000, 2, 0, {}, 8});
  table.Add(0x10000040, {0x00400100, 3, 0, {{1, false, 4}}, 9});
  return table;
}

const BlockProfile* FindBlock(const Profile& profile, uint8_t pid, uint32_t addr) {
  for (const BlockProfile& b : profile.blocks) {
    if (b.pid == pid && b.addr == addr) {
      return &b;
    }
  }
  return nullptr;
}

TEST(TraceProfiler, AttributesBlocksAndMemOps) {
  TraceInfoTable table = MakeUserTable();
  TraceProfiler prof;
  prof.AddTable(1, &table);
  std::vector<TraceRef> refs = {
      Ifetch(0x00400000), Ifetch(0x00400004),                      // A
      Ifetch(0x00400100), Ifetch(0x00400104), Load(0x00500000),    // B: fetch0,
      Ifetch(0x00400108),                                          // fetch1, load, fetch2
      Ifetch(0x00400000), Ifetch(0x00400004),                      // A again
  };
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();

  EXPECT_EQ(profile.totals.refs, refs.size());
  EXPECT_EQ(profile.totals.insts, 7u);
  EXPECT_EQ(profile.totals.loads, 1u);
  EXPECT_EQ(profile.totals.stores, 0u);
  EXPECT_EQ(profile.totals.block_entries, 3u);
  EXPECT_EQ(profile.totals.unattributed_insts, 0u);
  EXPECT_EQ(profile.totals.unattributed_data, 0u);

  const BlockProfile* a = FindBlock(profile, 1, 0x00400000);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->entries, 2u);
  EXPECT_EQ(a->insts, 4u);
  EXPECT_EQ(a->loads, 0u);
  EXPECT_EQ(a->num_insts, 2u);
  EXPECT_EQ(a->instr_words, 8u);
  // One trace word (the key) per entry, no data words.
  EXPECT_EQ(a->TraceWords(), 2u);
  // Each entry executes instr_words - num_insts inserted instructions.
  EXPECT_EQ(a->OverheadInsts(), 2u * (8 - 2));

  const BlockProfile* b = FindBlock(profile, 1, 0x00400100);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->entries, 1u);
  EXPECT_EQ(b->insts, 3u);
  EXPECT_EQ(b->loads, 1u);
  EXPECT_EQ(b->TraceWords(), 2u);  // key + one data word.

  // Dilation rollups are exactly the per-block sums.
  EXPECT_EQ(profile.totals.trace_words, a->TraceWords() + b->TraceWords());
  EXPECT_EQ(profile.totals.overhead_insts, a->OverheadInsts() + b->OverheadInsts());
}

TEST(TraceProfiler, NestedEntryOnAwaitingCursor) {
  // KA = 3 insts with a load at index 1; KB = 2 insts.  KB interrupts KA at
  // its data-await point (the parser's nested-exception shape); KA's load
  // data arrives after KB completes and must still charge to KA.
  TraceInfoTable table;
  table.Add(0x10000010, {0x80003000, 3, 0, {{1, false, 4}}, 10});
  table.Add(0x10000040, {0x80003100, 2, 0, {}, 7});
  TraceProfiler prof;
  prof.AddTable(kKernelPid, &table);
  std::vector<TraceRef> refs = {
      Ifetch(0x80003000, kKernelPid), Ifetch(0x80003004, kKernelPid),  // KA awaiting
      Ifetch(0x80003100, kKernelPid), Ifetch(0x80003104, kKernelPid),  // KB nested
      Load(0x80400000, kKernelPid),                                    // KA's data
      Ifetch(0x80003008, kKernelPid),                                  // KA resumes
  };
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();

  EXPECT_EQ(profile.totals.unattributed_insts, 0u);
  EXPECT_EQ(profile.totals.unattributed_data, 0u);
  const BlockProfile* ka = FindBlock(profile, kKernelPid, 0x80003000);
  const BlockProfile* kb = FindBlock(profile, kKernelPid, 0x80003100);
  ASSERT_NE(ka, nullptr);
  ASSERT_NE(kb, nullptr);
  EXPECT_EQ(ka->entries, 1u);
  EXPECT_EQ(ka->insts, 3u);
  EXPECT_EQ(ka->loads, 1u);
  EXPECT_EQ(kb->entries, 1u);
  EXPECT_EQ(kb->insts, 2u);
  EXPECT_EQ(kb->loads, 0u);
  EXPECT_EQ(profile.totals.kernel_insts, 5u);
  EXPECT_EQ(profile.totals.user_insts, 0u);
}

TEST(TraceProfiler, UnattributedIsCountedNeverGuessed) {
  TraceInfoTable table = MakeUserTable();
  TraceProfiler prof;
  prof.AddTable(1, &table);
  std::vector<TraceRef> refs = {
      Ifetch(0x00700000),  // No such leader.
      Load(0x00500000),    // No cursor awaits data.
      Store(0x00500004),   // Likewise.
  };
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();
  EXPECT_EQ(profile.totals.unattributed_insts, 1u);
  EXPECT_EQ(profile.totals.unattributed_data, 2u);
  EXPECT_EQ(profile.totals.block_entries, 0u);
  EXPECT_TRUE(profile.blocks.empty());
  // Pages still tally every reference — the heatmap never drops refs.
  uint64_t page_total = 0;
  for (const PageProfile& p : profile.pages) {
    page_total += p.Total();
  }
  EXPECT_EQ(page_total, 3u);
}

TEST(TraceProfiler, WorkingSetWindowsAndTail) {
  ProfileOptions options;
  options.window_refs = 4;
  options.page_bytes = 4096;
  TraceProfiler prof(options);
  // Window 1: pages 0,0,1,1 -> 2 unique.  Window 2: pages 2,3,4,5 -> 4.
  // Tail: pages 0,0 -> 1 unique over 2 refs.
  std::vector<TraceRef> refs = {
      Load(0x0000), Load(0x0100), Load(0x1000), Load(0x1200),
      Load(0x2000), Load(0x3000), Load(0x4000), Load(0x5000),
      Load(0x0000), Load(0x0200),
  };
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();
  ASSERT_EQ(profile.working_set.size(), 3u);
  EXPECT_EQ(profile.working_set[0], 2u);
  EXPECT_EQ(profile.working_set[1], 4u);
  EXPECT_EQ(profile.working_set[2], 1u);
  EXPECT_EQ(profile.window_refs, 4u);
  EXPECT_EQ(profile.tail_refs, 2u);
}

TEST(TraceProfiler, PageBoundaryBlockSplitsHeatmap) {
  // A block whose two instructions straddle a page boundary: its ifetches
  // must land on both pages.
  TraceInfoTable table;
  table.Add(0x10000010, {0x00400ffc, 2, 0, {}, 6});
  TraceProfiler prof;
  prof.AddTable(1, &table);
  std::vector<TraceRef> refs = {Ifetch(0x00400ffc), Ifetch(0x00401000)};
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();
  EXPECT_EQ(profile.totals.unattributed_insts, 0u);
  ASSERT_EQ(profile.pages.size(), 2u);
  uint64_t pages_seen = 0;
  for (const PageProfile& p : profile.pages) {
    EXPECT_EQ(p.ifetches, 1u);
    pages_seen |= p.page_addr;
  }
  EXPECT_EQ(pages_seen, 0x00400000u | 0x00401000u);
  const BlockProfile* b = FindBlock(profile, 1, 0x00400ffc);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->insts, 2u);
}

TEST(TraceProfiler, SymbolizationAndStrippedFallback) {
  TraceProfiler prof;
  prof.AddSymbol(1, "main", 0x00400000);
  prof.AddSymbol(1, "helper", 0x00400100);
  EXPECT_EQ(prof.Symbolize(1, 0x00400000), "main");
  EXPECT_EQ(prof.Symbolize(1, 0x00400010), "main+0x10");
  EXPECT_EQ(prof.Symbolize(1, 0x00400100), "helper");
  EXPECT_EQ(prof.Symbolize(1, 0x004001fc), "helper+0xfc");
  // Below every symbol, and in a space with no symbols at all (stripped
  // image): plain hex, never a wrong name.
  EXPECT_EQ(prof.Symbolize(1, 0x003ffffc), "0x003ffffc");
  EXPECT_EQ(prof.Symbolize(2, 0x00400000), "0x00400000");

  // Stripped space: blocks roll up under [unknown].
  TraceInfoTable table = MakeUserTable();
  TraceProfiler stripped;
  stripped.AddTable(2, &table);
  std::vector<TraceRef> refs = {Ifetch(0x00400000, 2), Ifetch(0x00400004, 2)};
  stripped.OnRefBatch(refs.data(), refs.size());
  Profile profile = stripped.Finish();
  ASSERT_EQ(profile.symbols.size(), 1u);
  EXPECT_EQ(profile.symbols[0].name, "[unknown]");
  EXPECT_EQ(profile.symbols[0].insts, 2u);
}

TEST(TraceProfiler, KernelUserAliasingKeepsSpacesDistinct) {
  // The same virtual leader address in two address spaces must produce two
  // independent block tallies (and feed the kernel/user split correctly).
  TraceInfoTable kernel_table;
  kernel_table.Add(0x10000010, {0x00400000, 2, 0, {}, 6});
  TraceInfoTable user_table;
  user_table.Add(0x20000010, {0x00400000, 3, 0, {}, 7});
  TraceProfiler prof;
  prof.AddTable(kKernelPid, &kernel_table);
  prof.AddTable(1, &user_table);
  prof.AddSymbol(kKernelPid, "khot", 0x00400000);
  prof.AddSymbol(1, "uhot", 0x00400000);
  std::vector<TraceRef> refs = {
      Ifetch(0x00400000, kKernelPid), Ifetch(0x00400004, kKernelPid),
      Ifetch(0x00400000, 1), Ifetch(0x00400004, 1), Ifetch(0x00400008, 1),
  };
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();
  EXPECT_EQ(profile.totals.unattributed_insts, 0u);
  const BlockProfile* k = FindBlock(profile, kKernelPid, 0x00400000);
  const BlockProfile* u = FindBlock(profile, 1, 0x00400000);
  ASSERT_NE(k, nullptr);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(k->insts, 2u);
  EXPECT_EQ(k->symbol, "khot");
  EXPECT_EQ(u->insts, 3u);
  EXPECT_EQ(u->symbol, "uhot");
  EXPECT_EQ(profile.totals.kernel_insts, 2u);
  EXPECT_EQ(profile.totals.user_insts, 3u);
}

TEST(TraceProfiler, FoldedStacksFormat) {
  TraceInfoTable table = MakeUserTable();
  TraceProfiler prof;
  prof.AddTable(1, &table);
  prof.SetSpaceName(1, "work");
  prof.AddSymbol(1, "main", 0x00400000);
  std::vector<TraceRef> refs = {Ifetch(0x00400000), Ifetch(0x00400004)};
  prof.OnRefBatch(refs.data(), refs.size());
  std::string folded = prof.Finish().FoldedStacks();
  EXPECT_EQ(folded, "work;main;block_0x00400000 2\n");
}

TEST(TraceProfiler, JsonPayloadSchema) {
  TraceInfoTable table = MakeUserTable();
  TraceProfiler prof;
  prof.AddTable(1, &table);
  std::vector<TraceRef> refs = {
      Ifetch(0x00400100), Ifetch(0x00400104), Load(0x00500000), Ifetch(0x00400108),
  };
  prof.OnRefBatch(refs.data(), refs.size());
  Profile profile = prof.Finish();
  JsonValue doc = ParseJson(profile.CanonicalJson());
  ASSERT_TRUE(doc.IsObject());
  const JsonValue* totals = doc.Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->At("refs").number, 4.0);
  EXPECT_EQ(totals->At("insts").number, 3.0);
  EXPECT_EQ(totals->At("loads").number, 1.0);
  EXPECT_EQ(totals->At("unattributed_insts").number, 0.0);
  const JsonValue* blocks = doc.Find("blocks");
  ASSERT_NE(blocks, nullptr);
  ASSERT_EQ(blocks->array.size(), 1u);
  EXPECT_EQ(blocks->array[0].At("addr").string, "0x00400100");
  EXPECT_EQ(blocks->array[0].At("insts").number, 3.0);
  ASSERT_NE(doc.Find("symbols"), nullptr);
  ASSERT_NE(doc.Find("pages"), nullptr);
  ASSERT_NE(doc.Find("working_set"), nullptr);
  ASSERT_NE(doc.Find("page_bytes"), nullptr);

  // The `top` cap truncates the tables but never the totals or the curve.
  JsonWriter capped(0);
  profile.WriteJson(capped, 1);
  JsonValue capped_doc = ParseJson(capped.TakeString());
  EXPECT_EQ(capped_doc.At("blocks").array.size(), 1u);
  EXPECT_EQ(capped_doc.At("totals").At("refs").number, 4.0);
}

// ---- Bit-identity on a real trace --------------------------------------

// A deterministic body with a loop, loads, and stores: enough trace volume
// to exercise batching and attribution without being slow.
const char* kBody = R"(
        .globl main
main:
        addiu $sp, $sp, -16
        sw   $ra, 12($sp)
        la   $t0, data
        li   $t1, 0
        li   $t2, 64
loop:   sll  $t3, $t1, 2
        andi $t3, $t3, 0xfc
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $t4, $t4, $t1
        sw   $t4, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, loop
        nop
        lw   $ra, 12($sp)
        jr   $ra
        addiu $sp, $sp, 16
        .data
data:   .space 256
)";

std::unique_ptr<TraceProfiler> MakeBareProfiler(const BareBuild& build) {
  auto prof = std::make_unique<TraceProfiler>();
  prof->AddTable(kKernelPid, &build.table);
  prof->AddSymbols(kKernelPid, build.original);
  return prof;
}

TEST(TraceProfiler, LiveReplayAndPerRefProfilesBitIdentical) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  ASSERT_FALSE(run.trace_words.empty());

  // Live: the profiler sits behind the parser as its batch sink.
  auto live = MakeBareProfiler(build);
  TraceParser parser(&build.table);
  parser.SetInitialContext(kKernelPid);
  parser.SetBatchSink(live.get());
  parser.Feed(run.trace_words);
  parser.Finish();
  ASSERT_TRUE(parser.errors().empty());
  Profile live_profile = live->Finish();

  // Replay: the same words packed into a TraceLog, parsed once by the
  // engine, the materialized stream delivered in batches.
  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));
  engine.Parse();
  auto replay = MakeBareProfiler(build);
  const std::vector<TraceRef>& refs = engine.refs();
  for (size_t off = 0; off < refs.size(); off += kRefBatchCapacity) {
    replay->OnRefBatch(refs.data() + off, std::min(kRefBatchCapacity, refs.size() - off));
  }
  Profile replay_profile = replay->Finish();

  // Per-ref: the WRL_BATCH=0 shape, one reference at a time.
  auto perref = MakeBareProfiler(build);
  for (const TraceRef& r : refs) {
    perref->OnRef(r);
  }
  Profile perref_profile = perref->Finish();

  std::string canonical = live_profile.CanonicalJson();
  EXPECT_EQ(canonical, replay_profile.CanonicalJson());
  EXPECT_EQ(canonical, perref_profile.CanonicalJson());
  EXPECT_EQ(live_profile.FoldedStacks(), replay_profile.FoldedStacks());

  // Exact reconciliation against the parser's own counters.
  const TraceParserStats& stats = parser.stats();
  EXPECT_EQ(live_profile.totals.refs, stats.refs);
  EXPECT_EQ(live_profile.totals.insts, stats.ifetches);
  EXPECT_EQ(live_profile.totals.loads, stats.loads);
  EXPECT_EQ(live_profile.totals.stores, stats.stores);
  EXPECT_EQ(live_profile.totals.block_entries, stats.blocks);
  EXPECT_EQ(live_profile.totals.idle_insts, stats.idle_instructions);
  EXPECT_EQ(live_profile.totals.unattributed_insts, 0u);
  EXPECT_EQ(live_profile.totals.unattributed_data, 0u);

  // Per-block instruction totals sum exactly to the machine counter.
  uint64_t block_insts = 0;
  for (const BlockProfile& b : live_profile.blocks) {
    block_insts += b.insts;
  }
  EXPECT_EQ(block_insts, stats.ifetches);
}

// ---- Experiment harness ------------------------------------------------

TEST(ExperimentProfile, LiveVsCaptureReplayBitIdentical) {
  WorkloadSpec workload = PaperWorkload("sed", 0.05);
  ExperimentOptions options;
  options.profile = true;

  ExperimentResult live = RunExperiment(workload, options);
  options.capture_replay = true;
  ExperimentResult replayed = RunExperiment(workload, options);

  ASSERT_GT(live.profile.totals.refs, 0u);
  EXPECT_EQ(live.profile.CanonicalJson(), replayed.profile.CanonicalJson());

  // The wrlstats counters and the profile describe the same stream.
  for (const ExperimentResult* r : {&live, &replayed}) {
    EXPECT_EQ(r->profile.totals.refs, r->stats.CounterValue("parser.refs"));
    EXPECT_EQ(r->profile.totals.insts, r->stats.CounterValue("parser.ifetches"));
    EXPECT_EQ(r->profile.totals.block_entries, r->stats.CounterValue("parser.blocks"));
    EXPECT_EQ(r->profile.totals.unattributed_insts, 0u);
    EXPECT_EQ(r->profile.totals.unattributed_data, 0u);
  }

  // The wrlstats/1 run report embeds the profile, top-N capped, with the
  // totals agreeing with the report's own parser counters.
  RunReportOptions report_options;
  report_options.profile_top = 3;
  JsonValue report = ParseJson(RunReportJson({live}, {}, report_options));
  const JsonValue& experiment = report.At("experiments").array.at(0);
  const JsonValue& profile = experiment.At("profile");
  EXPECT_LE(profile.At("blocks").array.size(), 3u);
  EXPECT_EQ(profile.At("totals").At("refs").number,
            experiment.At("counters").At("parser.refs").number);
}

TEST(ExperimentProfile, SuiteJobsInvariance) {
  std::vector<WorkloadSpec> all = PaperWorkloads(0.05);
  // Two cheap workloads are enough to exercise the worker pool.
  std::vector<WorkloadSpec> workloads(all.begin(), all.begin() + 2);
  ExperimentOptions options;
  options.profile = true;

  std::vector<ExperimentResult> serial = RunSuite(workloads, options);
  options.jobs = 2;
  options.parallel_pair = true;
  std::vector<ExperimentResult> parallel = RunSuite(workloads, options);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_GT(serial[i].profile.totals.refs, 0u) << workloads[i].name;
    EXPECT_EQ(serial[i].profile.CanonicalJson(), parallel[i].profile.CanonicalJson())
        << workloads[i].name;
  }
}

}  // namespace
}  // namespace wrl
