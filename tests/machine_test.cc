#include "mach/machine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wrl {
namespace {

// All test programs run in kernel mode out of kseg0 unless they set up the
// TLB and drop to user mode themselves.

constexpr const char* kHaltEpilogue = R"(
halt:   li   $t9, 0xbfd00004     # HALT register
        sw   $v0, 0($t9)
spin:   b    spin
        nop
)";

std::string Program(const std::string& body) {
  // Re-enter .text before the epilogue: test bodies may end in .data.
  return std::string("        .globl _start\n_start:\n") + body + "\n        .text\n" +
         kHaltEpilogue;
}

TEST(Machine, ArithmeticAndHalt) {
  auto m = RunBareProgram(Program(R"(
        li   $t0, 21
        addu $v0, $t0, $t0       # 42
        b    halt
        nop
)"));
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->halt_code(), 42u);
}

TEST(Machine, BranchDelaySlotExecutes) {
  auto m = RunBareProgram(Program(R"(
        li   $v0, 0
        b    over
        addiu $v0, $v0, 5        # delay slot must execute
        addiu $v0, $v0, 100      # skipped
over:   b    halt
        nop
)"));
  EXPECT_EQ(m->halt_code(), 5u);
}

TEST(Machine, JalLinksPastDelaySlot) {
  auto m = RunBareProgram(Program(R"(
        li   $v0, 1
        jal  sub
        addiu $v0, $v0, 10       # delay slot
        b    halt                # return point: ra = this address
        nop
sub:    jr   $ra
        addiu $v0, $v0, 100      # delay slot of jr
)"));
  EXPECT_EQ(m->halt_code(), 111u);
}

TEST(Machine, LoadStoreRoundTrip) {
  auto m = RunBareProgram(Program(R"(
        la   $t0, buf
        li   $t1, 0x12345678
        sw   $t1, 0($t0)
        lw   $v0, 0($t0)
        lbu  $t2, 0($t0)         # little-endian low byte
        lbu  $t3, 3($t0)
        sb   $t3, 4($t0)
        lb   $t4, 4($t0)
        b    halt
        nop
        .data
buf:    .space 16
)"));
  EXPECT_EQ(m->halt_code(), 0x12345678u);
}

TEST(Machine, SignExtensionOnLbLh) {
  auto m = RunBareProgram(Program(R"(
        la   $t0, buf
        li   $t1, 0x80ff
        sh   $t1, 0($t0)
        lh   $t2, 0($t0)         # sign-extends to 0xffff80ff
        srl  $v0, $t2, 16        # 0xffff
        b    halt
        nop
        .data
buf:    .space 8
)"));
  EXPECT_EQ(m->halt_code(), 0xffffu);
}

TEST(Machine, MultDivAndHiLo) {
  auto m = RunBareProgram(Program(R"(
        li   $t0, 1000
        li   $t1, 3
        mult $t0, $t1
        mflo $t2                 # 3000
        div  $t0, $t1
        mflo $t3                 # 333
        mfhi $t4                 # 1
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4       # 3334
        b    halt
        nop
)"));
  EXPECT_EQ(m->halt_code(), 3334u);
  EXPECT_GT(m->arith_stall_cycles(), 0u);
}

TEST(Machine, ConsoleOutput) {
  auto m = RunBareProgram(Program(R"(
        li   $t9, 0xbfd00000
        li   $t0, 72             # 'H'
        sw   $t0, 0($t9)
        li   $t0, 105            # 'i'
        sw   $t0, 0($t9)
        li   $t0, 1234
        sw   $t0, 0x44($t9)      # decimal debug port
        li   $v0, 0
        b    halt
        nop
)"));
  EXPECT_EQ(m->console().output(), "Hi1234");
}

TEST(Machine, CycleCounterMonotonic) {
  auto m = RunBareProgram(Program(R"(
        li   $t9, 0xbfd00000
        lw   $t0, 8($t9)         # CYCLE_LO
        nop
        nop
        nop
        lw   $t1, 8($t9)
        subu $v0, $t1, $t0       # elapsed cycles > 0
        b    halt
        nop
)"));
  EXPECT_GT(m->halt_code(), 0u);
  EXPECT_LT(m->halt_code(), 100u);
}

TEST(Machine, SyscallVectorsToGeneralHandler) {
  // Link at the vector base so the general handler is at +0x80.
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
        .space 0x80              # UTLB vector (unused here)
gen:    mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $v0, $k0, 31        # ExcCode == 8 (Sys)
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .space 0x100
_start: syscall 5
        nop
spin:   b    spin
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.Run(1000);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.halt_code(), 8u);  // Exc::kSys
  EXPECT_EQ(m.exception_count(Exc::kSys), 1u);
}

TEST(Machine, EpcPointsAtSyscall) {
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
        .globl the_syscall
        .space 0x80
gen:    mfc0 $v0, $epc
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .space 0x100
_start: nop
the_syscall: syscall
        nop
spin:   b spin
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.Run(1000);
  EXPECT_EQ(m.halt_code(), exe.SymbolAddress("the_syscall"));
}

TEST(Machine, UtlbMissVectorAndRefill) {
  // A full software TLB refill: linear page table in kseg0, Context-based
  // 9-instruction handler at the UTLB vector, then a user-segment load.
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
# --- UTLB refill handler at 0x80000000 ---
utlb:   mfc0 $k0, $context
        lw   $k0, 0($k0)         # PTE (EntryLo format)
        mtc0 $k0, $entrylo
        tlbwr
        mfc0 $k0, $epc
        jr   $k0
        rfe
        .align 128
# --- general handler: record the exception code and halt ---
gen:    mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $v0, $k0, 31
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .space 0x100
_start:
        # Linear page table at a 2MB-aligned kseg0 address (the Context
        # register composes PTEBase | BadVPN<<2, so PTEBase must be
        # 2MB-aligned).  Map user page 0 -> phys page 0x100:
        # EntryLo = PFN(31:12) | D(10) | V(9) = 0x100<<12 | 0x400 | 0x200.
        li   $t0, 0x80400000
        li   $t1, 0x00100600
        sw   $t1, 0($t0)
        mtc0 $t0, $context       # PTEBase
        # Store a value at phys 0x100010 via kseg0 so the user load sees it.
        li   $t3, 0x80100000
        li   $t4, 7777
        sw   $t4, 16($t3)
        # Touch user address 0x10 -> UTLB miss -> refill -> load works.
        li   $t5, 0x10
        lw   $v0, 0($t5)
        lw   $v0, 0($t5)         # second access: TLB hit, no new miss
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
spin:   b spin
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.Run(10000);
  ASSERT_TRUE(m.halted());
  EXPECT_EQ(m.halt_code(), 7777u);
  EXPECT_EQ(m.utlb_miss_exceptions(), 1u);  // Second access hits the TLB.
}

TEST(Machine, ClockInterrupt) {
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
        .space 0x80
gen:    li   $t9, 0xbfd00000
        sw   $zero, 0x14($t9)    # CLOCK_ACK
        sw   $zero, 0x10($t9)    # period = 0: stop the clock
        li   $v0, 99
        sw   $v0, 4($t9)         # halt(99)
        nop
        .space 0x100
_start: li   $t9, 0xbfd00000
        li   $t0, 100
        sw   $t0, 0x10($t9)      # clock period = 100 cycles
        mfc0 $t1, $status
        li   $t2, 0x8001         # IM7 | IEc
        or   $t1, $t1, $t2
        mtc0 $t1, $status
wait:   b    wait
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.Run(100000);
  ASSERT_TRUE(m.halted());
  EXPECT_EQ(m.halt_code(), 99u);
  EXPECT_GE(m.clock().ticks(), 1u);
}

TEST(Machine, DiskReadDmaAndInterrupt) {
  MachineConfig config;
  config.disk.seek_cycles = 500;
  config.disk.per_sector_cycles = 100;
  Machine m{config};
  // Put recognizable data in sector 3.
  for (int i = 0; i < 512; ++i) {
    m.disk().image()[3 * 512 + i] = static_cast<uint8_t>(i & 0xff);
  }
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
        .space 0x80
gen:    li   $t9, 0xbfd00000
        sw   $zero, 0x34($t9)    # DISK_ACK
        li   $t0, 0x80200000     # read the DMA'd data via kseg0
        lw   $v0, 4($t0)         # bytes 4..7 = 04 05 06 07
        sw   $v0, 4($t9)         # halt(value)
        nop
        .space 0x100
_start: li   $t9, 0xbfd00000
        li   $t0, 3
        sw   $t0, 0x20($t9)      # sector
        li   $t0, 0x00200000
        sw   $t0, 0x24($t9)      # DMA phys addr
        li   $t0, 1
        sw   $t0, 0x28($t9)      # count
        mfc0 $t1, $status
        li   $t2, 0x4001         # IM6 | IEc
        or   $t1, $t1, $t2
        mtc0 $t1, $status
        li   $t0, 1
        sw   $t0, 0x2c($t9)      # CMD = read
wait:   b    wait
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  LoadBare(m, exe);
  m.Run(100000);
  ASSERT_TRUE(m.halted());
  EXPECT_EQ(m.halt_code(), 0x07060504u);
  EXPECT_EQ(m.disk().operations(), 1u);
}

TEST(Machine, UserModeCannotTouchKseg) {
  // Drop to user mode via rfe + jr into a user-mapped page, then try to
  // read kseg0: expect AdEL recorded by the general handler.
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
utlb:   b    utlb                # no refills expected (wired entry used)
        nop
        .align 128
gen:    mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $v0, $k0, 31
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)         # halt(exccode)
        nop
        .space 0x100
_start:
        # Wire user page 0 -> phys 0x100 page, via tlbwi at index 0.
        li   $t0, 0x00000000     # EntryHi: vpn 0, asid 0
        mtc0 $t0, $entryhi
        li   $t1, 0x00100600     # EntryLo: pfn 0x100, D|V
        mtc0 $t1, $entrylo
        mtc0 $zero, $index
        tlbwi
        # Copy a tiny user program to phys 0x100000 (= user va 0).
        li   $t2, 0x80100000
        la   $t3, user_code
        lw   $t4, 0($t3)
        sw   $t4, 0($t2)
        lw   $t4, 4($t3)
        sw   $t4, 4($t2)
        lw   $t4, 8($t3)
        sw   $t4, 8($t2)
        # Return to user mode at va 0: status stack: set KUp|IEp, rfe pops.
        mfc0 $t5, $status
        ori  $t5, $t5, 0x08      # KUp = user
        mtc0 $t5, $status
        li   $k0, 0
        jr   $k0
        rfe
user_code:
        lui  $t0, 0x8000         # kseg0 address
        lw   $t1, 0($t0)         # must fault with AdEL (4)
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.Run(10000);
  ASSERT_TRUE(m.halted());
  EXPECT_EQ(m.halt_code(), 4u);  // AdEL
  EXPECT_GT(m.user_instructions(), 0u);
}

TEST(Machine, TlbModExceptionOnCleanPage) {
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
        .space 0x80
gen:    mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $v0, $k0, 31
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .space 0x100
_start: li   $t0, 0x00000000
        mtc0 $t0, $entryhi
        li   $t1, 0x00100200     # V only, not dirty
        mtc0 $t1, $entrylo
        mtc0 $zero, $index
        tlbwi
        li   $t2, 0x10
        sw   $zero, 0($t2)       # store to clean page -> Mod (1)
        nop
)");
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.Run(10000);
  ASSERT_TRUE(m.halted());
  EXPECT_EQ(m.halt_code(), 1u);  // Mod
}

TEST(Machine, TimingModeChargesStalls) {
  MachineConfig timing;
  timing.timing = true;
  auto functional = RunBareProgram(Program(R"(
        li   $t0, 0
        li   $t1, 2000
loop:   addiu $t0, $t0, 1
        bne  $t0, $t1, loop
        nop
        li   $v0, 0
        b    halt
        nop
)"));
  auto timed = RunBareProgram(Program(R"(
        li   $t0, 0
        li   $t1, 2000
loop:   addiu $t0, $t0, 1
        bne  $t0, $t1, loop
        nop
        li   $v0, 0
        b    halt
        nop
)"),
                              1'000'000, timing);
  // Same instruction count; timing mode adds stall cycles (cold caches).
  EXPECT_GT(timed->cycles(), functional->cycles());
  ASSERT_NE(timed->memsys(), nullptr);
  EXPECT_GT(timed->memsys()->stats().icache_misses, 0u);
  EXPECT_EQ(functional->memsys(), nullptr);
}

TEST(Machine, ReferenceTraceHookSeesAllRefs) {
  Executable exe = BuildBareProgram(Program(R"(
        la   $t0, buf
        sw   $zero, 0($t0)
        lw   $t1, 0($t0)
        li   $v0, 0
        b    halt
        nop
        .data
buf:    .space 8
)"));
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  uint64_t ifetches = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  m.set_trace_hook([&](const RefEvent& e) {
    switch (e.kind) {
      case RefEvent::kIfetch: ++ifetches; break;
      case RefEvent::kLoad: ++loads; break;
      case RefEvent::kStore: ++stores; break;
    }
  });
  m.Run(1000);
  EXPECT_EQ(ifetches, m.instructions());
  EXPECT_EQ(loads, 1u);
  EXPECT_EQ(stores, 2u);  // sw + halt-register store
}

TEST(Machine, IdleRangeCounter) {
  Executable exe = BuildBareProgram(Program(R"(
        .globl idle_top
        li   $t0, 50
idle_top:
        addiu $t0, $t0, -1
        bne  $t0, $zero, idle_top
        nop
        li   $v0, 0
        b    halt
        nop
)"));
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  uint32_t lo = exe.SymbolAddress("idle_top");
  m.SetIdleRange(lo, lo + 12);
  m.Run(10000);
  EXPECT_EQ(m.idle_instructions(), 150u);  // 3 instructions x 50 iterations
}

TEST(Machine, HostcallRoundTrip) {
  Executable exe = BuildBareProgram(Program(R"(
        li   $t9, 0xbfd00000
        li   $t0, 55
        sw   $t0, 0x40($t9)      # hostcall(55)
        lw   $v0, 0x40($t9)      # read reply
        b    halt
        nop
)"));
  Machine m{MachineConfig{}};
  LoadBare(m, exe);
  m.set_hostcall_handler([](uint32_t v) { return v * 2; });
  m.Run(1000);
  EXPECT_EQ(m.halt_code(), 110u);
}

TEST(Machine, RandomRegisterStaysInUnwiredRange) {
  Tlb tlb(8);
  for (uint64_t count = 0; count < 1000; ++count) {
    unsigned r = tlb.Random(count);
    EXPECT_GE(r, 8u);
    EXPECT_LT(r, 64u);
  }
}

TEST(Tlb, AsidIsolation) {
  Tlb tlb;
  tlb.entry(10) = {MakeEntryHi(0x4000, 3), MakeEntryLo(0x100000, true, true, false)};
  EXPECT_TRUE(tlb.Lookup(0x4000, 3).has_value());
  EXPECT_FALSE(tlb.Lookup(0x4000, 4).has_value());
}

TEST(Tlb, GlobalEntriesIgnoreAsid) {
  Tlb tlb;
  tlb.entry(10) = {MakeEntryHi(0x4000, 3), MakeEntryLo(0x100000, true, true, true)};
  EXPECT_TRUE(tlb.Lookup(0x4000, 7).has_value());
}

}  // namespace
}  // namespace wrl
