// Table 2: run times, measured and predicted, in (simulated) seconds, for
// both personalities.  As in the paper, absolute values depend on the
// substrate; the claim under test is that trace-driven prediction tracks
// the hardware measurement for most workloads.
#include <cstdio>

#include "bench/bench_util.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  double hz = 25e6;
  printf("=== Table 2: Run Times, measured and predicted, in seconds (scale %.2f) ===\n", scale);
  EventRecorder events;
  ExperimentOptions base;
  base.progress = BenchProgress(argc, argv);
  std::vector<ExperimentResult> ultrix =
      RunPersonalitySuite(Personality::kUltrix, scale, &events, jobs, base);
  std::vector<ExperimentResult> mach =
      RunPersonalitySuite(Personality::kMach, scale, &events, jobs, base);

  printf("%-10s | %21s | %21s\n", "", "Ultrix", "Mach 3.0");
  printf("%-10s | %10s %10s | %10s %10s\n", "workload", "measured", "predicted", "measured",
         "predicted");
  printf("-----------+-----------------------+----------------------\n");
  for (size_t i = 0; i < ultrix.size(); ++i) {
    printf("%-10s | %10.4f %10.4f | %10.4f %10.4f\n", ultrix[i].workload.c_str(),
           ultrix[i].MeasuredSeconds(hz), ultrix[i].PredictedSeconds(hz),
           mach[i].MeasuredSeconds(hz), mach[i].PredictedSeconds(hz));
  }
  printf("\n(parser validation errors: ");
  uint64_t errors = 0;
  for (const auto& r : ultrix) {
    errors += r.parser_errors;
  }
  for (const auto& r : mach) {
    errors += r.parser_errors;
  }
  printf("%llu)\n", static_cast<unsigned long long>(errors));

  std::vector<ExperimentResult> all = ultrix;
  all.insert(all.end(), mach.begin(), mach.end());
  MaybeWriteRunReport(argc, argv, "bench_table2", scale, all, &events);
  return errors == 0 ? 0 : 1;
}
