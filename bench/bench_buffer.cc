// §4.3's buffer sizing: the in-kernel buffer bounds how long the system
// runs between generation/analysis mode switches ("the current system uses
// a 64 megabyte buffer ... approximately 32 million instructions of
// continuous execution").  We sweep the buffer size and report the
// instructions-per-switch ratio, which should scale linearly.
//
// --jobs N (or WRL_JOBS) runs the sweep points on a worker pool; rows,
// metrics, and the extrapolation are printed in size order either way.
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "kernel/system_build.h"

using namespace wrl;

namespace {

struct SweepPoint {
  uint32_t kb = 0;
  bool halted = false;
  uint64_t switches = 0;
  uint64_t instructions = 0;
};

SweepPoint RunPoint(const WorkloadSpec& w, uint32_t kb) {
  SweepPoint point;
  point.kb = kb;
  SystemConfig config;
  config.tracing = true;
  config.clock_period = 200000 * 15;
  config.trace_buf_bytes = kb * 1024;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  auto sys = BuildSystem(config);
  sys->SetTraceSink([](const uint32_t*, size_t) {});
  RunResult r = sys->Run(3'000'000'000ull);
  point.halted = r.halted;
  point.switches = sys->AnalysisSwitches();
  point.instructions = sys->machine().instructions();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  WorkloadSpec w = PaperWorkload("compress", scale);
  const std::vector<uint32_t> sizes = {192u, 384u, 768u, 1536u};
  printf("=== In-kernel buffer sizing vs analysis-mode switches ===\n");
  printf("%-10s %10s %14s %16s\n", "buffer", "switches", "traced instrs", "instrs/switch");

  // The sweep points are independent traced runs; with --jobs they go on a
  // worker pool (claim-the-next-index), results landing in size order.
  std::vector<SweepPoint> points(sizes.size());
  std::vector<std::exception_ptr> errors(sizes.size());
  unsigned workers = jobs < 1 ? 1u : jobs;
  if (workers > sizes.size()) {
    workers = static_cast<unsigned>(sizes.size());
  }
  if (workers <= 1) {
    for (size_t i = 0; i < sizes.size(); ++i) {
      points[i] = RunPoint(w, sizes[i]);
    }
  } else {
    fprintf(stderr, "  running %zu sweep points on %u workers...\n", sizes.size(), workers);
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < sizes.size(); i = next.fetch_add(1)) {
          try {
            points[i] = RunPoint(w, sizes[i]);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    for (std::thread& worker : pool) {
      worker.join();
    }
    for (const std::exception_ptr& error : errors) {
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }
  }

  std::map<std::string, double> metrics;
  double per_mb = 0;
  for (const SweepPoint& point : points) {
    if (!point.halted) {
      printf("%7uKB DID NOT HALT\n", point.kb);
      continue;
    }
    double per_switch =
        point.switches ? static_cast<double>(point.instructions) / point.switches : 0;
    printf("%7uKB %10llu %14llu %16.0f\n", point.kb,
           static_cast<unsigned long long>(point.switches),
           static_cast<unsigned long long>(point.instructions), per_switch);
    std::string key = "buf" + std::to_string(point.kb) + "kb";
    metrics[key + ".switches"] = static_cast<double>(point.switches);
    metrics[key + ".instructions"] = static_cast<double>(point.instructions);
    metrics[key + ".instrs_per_switch"] = per_switch;
    if (point.switches > 0) {
      per_mb = per_switch / (point.kb / 1024.0);
    }
  }
  if (per_mb > 0) {
    printf("\nextrapolation: a 64MB buffer sustains ~%.0fM instructions between\n",
           per_mb * 64 / 1e6);
    printf("analysis phases (the paper reports ~32M; the ratio depends on the\n");
    printf("workload's trace density).\n");
    metrics["extrapolated_instrs_per_64mb"] = per_mb * 64;
  }
  MaybeWriteMetricsReport(argc, argv, "bench_buffer", scale, metrics);
  return 0;
}
