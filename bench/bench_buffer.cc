// §4.3's buffer sizing: the in-kernel buffer bounds how long the system
// runs between generation/analysis mode switches ("the current system uses
// a 64 megabyte buffer ... approximately 32 million instructions of
// continuous execution").  We sweep the buffer size and report the
// instructions-per-switch ratio, which should scale linearly.
#include <cstdio>

#include "bench/bench_util.h"
#include "kernel/system_build.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  WorkloadSpec w = PaperWorkload("compress", scale);
  printf("=== In-kernel buffer sizing vs analysis-mode switches ===\n");
  printf("%-10s %10s %14s %16s\n", "buffer", "switches", "traced instrs", "instrs/switch");

  std::map<std::string, double> metrics;
  double per_mb = 0;
  for (uint32_t kb : {192u, 384u, 768u, 1536u}) {
    SystemConfig config;
    config.tracing = true;
    config.clock_period = 200000 * 15;
    config.trace_buf_bytes = kb * 1024;
    config.program_source = w.source;
    config.program_name = w.name;
    config.files = w.files;
    auto sys = BuildSystem(config);
    sys->SetTraceSink([](const uint32_t*, size_t) {});
    RunResult r = sys->Run(3'000'000'000ull);
    if (!r.halted) {
      printf("%7uKB DID NOT HALT\n", kb);
      continue;
    }
    uint64_t switches = sys->AnalysisSwitches();
    uint64_t instrs = sys->machine().instructions();
    double per_switch = switches ? static_cast<double>(instrs) / switches : 0;
    printf("%7uKB %10llu %14llu %16.0f\n", kb, static_cast<unsigned long long>(switches),
           static_cast<unsigned long long>(instrs), per_switch);
    std::string key = "buf" + std::to_string(kb) + "kb";
    metrics[key + ".switches"] = static_cast<double>(switches);
    metrics[key + ".instructions"] = static_cast<double>(instrs);
    metrics[key + ".instrs_per_switch"] = per_switch;
    if (switches > 0) {
      per_mb = per_switch / (kb / 1024.0);
    }
  }
  if (per_mb > 0) {
    printf("\nextrapolation: a 64MB buffer sustains ~%.0fM instructions between\n",
           per_mb * 64 / 1e6);
    printf("analysis phases (the paper reports ~32M; the ratio depends on the\n");
    printf("workload's trace density).\n");
    metrics["extrapolated_instrs_per_64mb"] = per_mb * 64;
  }
  MaybeWriteMetricsReport(argc, argv, "bench_buffer", scale, metrics);
  return 0;
}
