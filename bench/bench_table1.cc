// Table 1: the experimental workloads, with their descriptions and the
// dynamic behavior of our reconstructions (instruction counts and simulated
// execution times on the uninstrumented Ultrix system).
#include <cstdio>

#include "bench/bench_util.h"
#include "kernel/system_build.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  printf("=== Table 1: Experimental workloads (scale %.2f) ===\n", scale);
  printf("%-10s %-12s %12s %9s  %s\n", "workload", "class", "user instrs", "seconds",
         "description");
  EventRecorder events;
  std::map<std::string, double> metrics;
  for (const WorkloadSpec& w : PaperWorkloads(scale)) {
    SystemConfig config;
    config.program_source = w.source;
    config.program_name = w.name;
    config.files = w.files;
    auto sys = BuildSystem(config);
    events.SetCycleSource(
        [m = &sys->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(&events, "run:" + w.name, "run");
    RunResult r = sys->Run(3'000'000'000ull);
    if (!r.halted) {
      printf("%-10s DID NOT HALT\n", w.name.c_str());
      continue;
    }
    double seconds = static_cast<double>(sys->ProcessCycles(1)) / 25e6;
    printf("%-10s %-12s %12llu %9.4f  %s\n", w.name.c_str(),
           w.fp_intensive ? "fp" : "integer",
           static_cast<unsigned long long>(sys->machine().user_instructions()),
           seconds, w.description.c_str());
    metrics[w.name + ".user_instructions"] =
        static_cast<double>(sys->machine().user_instructions());
    metrics[w.name + ".seconds"] = seconds;
  }
  events.SetCycleSource(nullptr);
  MaybeWriteMetricsReport(argc, argv, "bench_table1", scale, metrics, &events);
  return 0;
}
