// Table 1: the experimental workloads, with their descriptions and the
// dynamic behavior of our reconstructions (instruction counts and simulated
// execution times on the uninstrumented Ultrix system).
//
// --jobs N (or WRL_JOBS) runs the workloads on a worker pool; rows, metrics,
// and the timeline are emitted in workload order either way (per-worker
// event recorders are absorbed deterministically).
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "kernel/system_build.h"

using namespace wrl;

namespace {

struct Row {
  bool halted = false;
  uint64_t user_instructions = 0;
  double seconds = 0;
};

Row RunWorkload(const WorkloadSpec& w, EventRecorder* events) {
  Row row;
  SystemConfig config;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  auto sys = BuildSystem(config);
  events->SetCycleSource([m = &sys->machine()]() -> uint64_t { return m->cycles(); });
  RunResult r;
  {
    EventRecorder::Scope scope(events, "run:" + w.name, "run");
    r = sys->Run(3'000'000'000ull);
  }
  events->SetCycleSource(nullptr);
  row.halted = r.halted;
  row.user_instructions = sys->machine().user_instructions();
  row.seconds = static_cast<double>(sys->ProcessCycles(1)) / 25e6;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  printf("=== Table 1: Experimental workloads (scale %.2f) ===\n", scale);
  printf("%-10s %-12s %12s %9s  %s\n", "workload", "class", "user instrs", "seconds",
         "description");
  EventRecorder events;
  const std::vector<WorkloadSpec> workloads = PaperWorkloads(scale);
  std::vector<Row> rows(workloads.size());

  unsigned workers = jobs < 1 ? 1u : jobs;
  if (workers > workloads.size()) {
    workers = static_cast<unsigned>(workloads.size());
  }
  if (workers <= 1) {
    for (size_t i = 0; i < workloads.size(); ++i) {
      rows[i] = RunWorkload(workloads[i], &events);
    }
  } else {
    // Worker pool over the workloads: claim the next index, record into a
    // private recorder, absorb timelines in workload order afterwards.
    fprintf(stderr, "  running %zu workloads on %u workers...\n", workloads.size(), workers);
    std::vector<EventRecorder> recorders(workloads.size());
    std::vector<std::exception_ptr> errors(workloads.size());
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < workloads.size(); i = next.fetch_add(1)) {
          try {
            rows[i] = RunWorkload(workloads[i], &recorders[i]);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    for (std::thread& worker : pool) {
      worker.join();
    }
    for (const std::exception_ptr& error : errors) {
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }
    for (EventRecorder& recorder : recorders) {
      events.Absorb(recorder.TakeEvents());
    }
  }

  std::map<std::string, double> metrics;
  for (size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadSpec& w = workloads[i];
    const Row& row = rows[i];
    if (!row.halted) {
      printf("%-10s DID NOT HALT\n", w.name.c_str());
      continue;
    }
    printf("%-10s %-12s %12llu %9.4f  %s\n", w.name.c_str(),
           w.fp_intensive ? "fp" : "integer",
           static_cast<unsigned long long>(row.user_instructions), row.seconds,
           w.description.c_str());
    metrics[w.name + ".user_instructions"] = static_cast<double>(row.user_instructions);
    metrics[w.name + ".seconds"] = row.seconds;
  }
  MaybeWriteMetricsReport(argc, argv, "bench_table1", scale, metrics, &events);
  return 0;
}
