// Figure 2: instrumentation by epoxie — the before/after listing of the
// paper's fopen-prologue example, produced by our actual rewriter.
#include <cstdio>

#include "asm/assembler.h"
#include "bench/bench_util.h"
#include "epoxie/epoxie.h"
#include "isa/isa.h"

using namespace wrl;

int main(int argc, char** argv) {
  const char* before = R"(
        .globl fopen
fopen:  addiu $sp, $sp, -24
        sw   $ra, 20($sp)
        sw   $a0, 24($sp)
        jal  _findiop
        sw   $a1, 28($sp)
        .globl _findiop
_findiop:
        jr   $ra
        nop
)";
  ObjectFile obj = Assemble("fopen.s", before);
  InstrumentResult result = Instrument(obj, EpoxieConfig{});

  printf("=== Figure 2: Instrumentation by epoxie ===\n\n");
  printf("a) Before instrumentation\n");
  for (uint32_t off = 0; off < obj.NumTextWords() * 4; off += 4) {
    printf("  i+%-3u  %s\n", off / 4, DisassembleWord(obj.TextWord(off), off).c_str());
  }
  printf("\nb) After instrumentation (%u -> %u words, growth %.2fx)\n",
         result.original_text_words, result.instrumented_text_words,
         result.TextGrowthFactor());
  for (uint32_t off = 0; off < result.object.NumTextWords() * 4; off += 4) {
    printf("  i'+%-3u %s\n", off / 4, DisassembleWord(result.object.TextWord(off), off).c_str());
  }
  printf("\n(jal targets are unresolved until link time; the 'ori zero, zero, N'\n");
  printf("delay-slot no-ops carry each block's trace word count, and the sw/lw\n");
  printf("through $t7 address the tracing bookkeeping area, as in the paper.)\n");

  std::map<std::string, double> metrics;
  metrics["fopen.original_text_words"] = result.original_text_words;
  metrics["fopen.instrumented_text_words"] = result.instrumented_text_words;
  metrics["fopen.text_growth"] = result.TextGrowthFactor();
  MaybeWriteMetricsReport(argc, argv, "bench_figure2", 0, metrics);
  return 0;
}
