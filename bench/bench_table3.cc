// Table 3: user TLB misses, measured (kernel counter in the uninstrumented
// system) and predicted (TLB simulation over the reconstructed trace), for
// both personalities.  The paper's headline shapes: Mach's user miss counts
// are far larger than Ultrix's (system code runs in user space), and the
// explicit tlbdropin/tlb_map_random TLB loads are a visible error source.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  printf("=== Table 3: TLB misses, measured and predicted (scale %.2f) ===\n", scale);
  EventRecorder events;
  std::vector<ExperimentResult> ultrix = RunPersonalitySuite(Personality::kUltrix, scale, &events, jobs);
  std::vector<ExperimentResult> mach = RunPersonalitySuite(Personality::kMach, scale, &events, jobs);

  printf("%-10s | %21s | %21s\n", "", "Mach 3.0", "Ultrix");
  printf("%-10s | %10s %10s | %10s %10s\n", "workload", "predicted", "measured", "predicted",
         "measured");
  printf("-----------+-----------------------+----------------------\n");
  double log_ratio_sum = 0;
  int ratio_count = 0;
  for (size_t i = 0; i < ultrix.size(); ++i) {
    printf("%-10s | %10llu %10llu | %10llu %10llu\n", ultrix[i].workload.c_str(),
           static_cast<unsigned long long>(mach[i].prediction.utlb_misses),
           static_cast<unsigned long long>(mach[i].measured_utlb),
           static_cast<unsigned long long>(ultrix[i].prediction.utlb_misses),
           static_cast<unsigned long long>(ultrix[i].measured_utlb));
    if (ultrix[i].measured_utlb > 0 && mach[i].measured_utlb > 0) {
      log_ratio_sum += std::log(static_cast<double>(mach[i].measured_utlb) /
                                static_cast<double>(ultrix[i].measured_utlb));
      ++ratio_count;
    }
  }
  printf("\nexplicit TLB loads (tlbdropin / tlb_map_random), the error source the\n");
  printf("simulator cannot see:\n");
  for (size_t i = 0; i < ultrix.size(); ++i) {
    printf("  %-10s ultrix tlbdropin=%-8llu mach tlb_map_random=%llu\n",
           ultrix[i].workload.c_str(),
           static_cast<unsigned long long>(ultrix[i].measured_tlbdropins),
           static_cast<unsigned long long>(mach[i].measured_tlbdropins));
  }
  printf("\nmeasured mach/ultrix miss ratio (geometric mean over workloads): %.2fx\n",
         ratio_count ? std::exp(log_ratio_sum / ratio_count) : 0.0);
  printf("(the paper's gap is larger still: its UX server is a full UNIX server\n");
  printf("whose text/data dwarf our reconstruction's)\n");

  std::vector<ExperimentResult> all = ultrix;
  all.insert(all.end(), mach.begin(), mach.end());
  MaybeWriteRunReport(argc, argv, "bench_table3", scale, all, &events);
  return 0;
}
