// §3.2's text-expansion comparison: epoxie's minimized instrumentation
// (1.9–2.3x in the paper) against the pixie-style baseline (4–6x), over
// every workload binary, the user library, and the kernel.
#include <cstdio>

#include "asm/assembler.h"
#include "bench/bench_util.h"
#include "epoxie/epoxie.h"
#include "kernel/kernel_asm.h"
#include "kernel/system_build.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  printf("=== Text expansion: epoxie vs pixie-style instrumentation ===\n");
  printf("%-10s %10s %10s %10s\n", "binary", "words", "epoxie", "pixie");

  std::map<std::string, double> metrics;
  auto measure = [&metrics](const char* name, const ObjectFile& obj) {
    EpoxieConfig e;
    EpoxieConfig p;
    p.mode = InstrumentMode::kPixie;
    InstrumentResult re = Instrument(obj, e);
    InstrumentResult rp = Instrument(obj, p);
    printf("%-10s %10u %9.2fx %9.2fx\n", name, re.original_text_words, re.TextGrowthFactor(),
           rp.TextGrowthFactor());
    metrics[std::string(name) + ".text_words"] = re.original_text_words;
    metrics[std::string(name) + ".epoxie_growth"] = re.TextGrowthFactor();
    metrics[std::string(name) + ".pixie_growth"] = rp.TextGrowthFactor();
    return std::make_pair(re, rp);
  };

  double esum = 0;
  double psum = 0;
  int count = 0;
  for (const WorkloadSpec& w : PaperWorkloads(scale)) {
    ObjectFile obj = Assemble(w.name + ".s", w.source);
    auto [re, rp] = measure(w.name.c_str(), obj);
    esum += re.TextGrowthFactor();
    psum += rp.TextGrowthFactor();
    ++count;
  }
  measure("userlib", Assemble("userlib.s", UserLibAsm()));
  measure("kernel", Assemble("kernel.s", KernelAsm()));
  measure("server", Assemble("server.s", ServerAsm()));

  printf("\nworkload averages: epoxie %.2fx (paper: 1.9-2.3x), pixie-style %.2fx (paper: 4-6x)\n",
         esum / count, psum / count);
  metrics["workloads.epoxie_growth_mean"] = esum / count;
  metrics["workloads.pixie_growth_mean"] = psum / count;
  MaybeWriteMetricsReport(argc, argv, "bench_text_expansion", scale, metrics);
  return 0;
}
