// §3.4's Tunix-era observation, reproduced with the full system: kernel
// cycles-per-instruction exceed user CPI severalfold (the paper: kernel CPI
// was three times user CPI), because kernel code has worse locality.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/predictor.h"
#include "trace/parser.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  printf("=== Kernel vs user CPI from trace-driven cache simulation ===\n");
  printf("%-10s %9s %9s %7s\n", "workload", "user CPI", "kern CPI", "ratio");
  EventRecorder events;
  std::vector<ExperimentResult> results;
  const char* names[] = {"sed", "egrep", "compress", "yacc"};
  for (const char* name : names) {
    WorkloadSpec w = PaperWorkload(name, scale);
    ExperimentOptions options;
    options.events = &events;
    ExperimentResult r = RunExperiment(w, options);
    PrintResultWarnings(r, stderr);
    double ratio = r.prediction.UserCpi() > 0
                       ? r.prediction.KernelCpi() / r.prediction.UserCpi()
                       : 0;
    printf("%-10s %9.3f %9.3f %6.2fx\n", name, r.prediction.UserCpi(),
           r.prediction.KernelCpi(), ratio);
    results.push_back(std::move(r));
  }
  printf("\n(the paper's Tunix experiments saw kernel CPI ~ 3x user CPI; the exact\n");
  printf("ratio depends on workload locality and the cache configuration)\n");
  MaybeWriteRunReport(argc, argv, "bench_cpi", scale, results, &events);
  return 0;
}
