// Figure 3: percent error in predicted execution times for Ultrix, as an
// ASCII bar chart.  The paper's shape: most workloads within ~5%, with the
// short-running and I/O-heavy ones (sed, compress) and the write-buffer-
// bound one (liv) larger.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  printf("=== Figure 3: Error in predicted execution times for Ultrix (scale %.2f) ===\n", scale);
  EventRecorder events;
  std::vector<ExperimentResult> results = RunPersonalitySuite(Personality::kUltrix, scale, &events, jobs);
  printf("%-10s %8s  (one '#' per half percent of |error|)\n", "workload", "error");
  double worst = 0;
  for (const ExperimentResult& r : results) {
    double err = r.TimeErrorPercent();
    worst = std::max(worst, std::fabs(err));
    int bars = static_cast<int>(std::fabs(err) * 2.0 + 0.5);
    printf("%-10s %+7.2f%% |", r.workload.c_str(), err);
    for (int i = 0; i < bars && i < 60; ++i) {
      putchar('#');
    }
    putchar('\n');
  }
  printf("\nworst |error| = %.2f%%\n", worst);
  MaybeWriteRunReport(argc, argv, "bench_figure3", scale, results, &events);
  return 0;
}
