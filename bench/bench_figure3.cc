// Figure 3: percent error in predicted execution times for Ultrix, as an
// ASCII bar chart.  The paper's shape: most workloads within ~5%, with the
// short-running and I/O-heavy ones (sed, compress) and the write-buffer-
// bound one (liv) larger.
//
// The suite runs on the capture-once / replay-many pipeline with the
// single-pass sweep engine on top: each workload's traced machine run is
// captured into a packed TraceLog, the primary prediction replays it, and
// the what-if sweep (half/quarter-size caches, a slower memory, more wired
// TLB entries) is priced with at most two extra passes — the geometry-only
// variants (cache32k, cache16k) are absorbed by ONE forest-simulation sweep
// pass with exact miss counts, and only the non-sweepable ones (slowmem,
// wired16 — different penalties / TLB wiring change the effective stream)
// still fan out to dedicated replays.  WRL_BATCH=0 forces per-ref delivery;
// every miss count is bit-identical either way.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace wrl;

namespace {

// The what-if sweep replayed against each workload's capture.
std::vector<ReplayVariant> SweepVariants() {
  std::vector<ReplayVariant> variants;
  {
    ReplayVariant v;
    v.name = "cache32k";
    v.memsys.icache.size_bytes = 32 * 1024;
    v.memsys.dcache.size_bytes = 32 * 1024;
    variants.push_back(v);
  }
  {
    ReplayVariant v;
    v.name = "cache16k";
    v.memsys.icache.size_bytes = 16 * 1024;
    v.memsys.dcache.size_bytes = 16 * 1024;
    variants.push_back(v);
  }
  {
    ReplayVariant v;
    v.name = "slowmem";
    v.memsys.read_miss_penalty = 30;
    v.memsys.uncached_penalty = 30;
    variants.push_back(v);
  }
  {
    ReplayVariant v;
    v.name = "wired16";
    v.tlb_wired = 16;
    variants.push_back(v);
  }
  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  printf("=== Figure 3: Error in predicted execution times for Ultrix (scale %.2f) ===\n", scale);
  EventRecorder events;
  ExperimentOptions base;
  base.replay_variants = SweepVariants();
  // Absorb the geometry-only variants into the single-pass sweep engine;
  // slowmem and wired16 still replay (their penalties / wiring are not
  // sweepable).  The sweep also exports the LRU TLB capacity curve.
  base.sweep.enabled = true;
  base.sweep.tlb_max_entries = 64;
  std::vector<ExperimentResult> results =
      RunPersonalitySuite(Personality::kUltrix, scale, &events, jobs, base);
  printf("%-10s %8s  (one '#' per half percent of |error|)\n", "workload", "error");
  double worst = 0;
  for (const ExperimentResult& r : results) {
    double err = r.TimeErrorPercent();
    worst = std::max(worst, std::fabs(err));
    int bars = static_cast<int>(std::fabs(err) * 2.0 + 0.5);
    printf("%-10s %+7.2f%% |", r.workload.c_str(), err);
    for (int i = 0; i < bars && i < 60; ++i) {
      putchar('#');
    }
    putchar('\n');
  }
  printf("\nworst |error| = %.2f%%\n", worst);

  // The replay sweep: predicted time for each what-if config, from the same
  // single capture as the primary prediction (one traced run per workload).
  printf("\n=== What-if sweep (one capture; '*' = priced by the sweep pass) ===\n");
  printf("%-10s %10s", "workload", "primary");
  for (const ReplayVariant& v : base.replay_variants) {
    printf(" %10s", v.name.c_str());
  }
  printf("\n");
  double mrefs_sum = 0;
  double sweep_mrefs_sum = 0;
  unsigned sweep_runs = 0;
  for (const ExperimentResult& r : results) {
    printf("%-10s %10.4f", r.workload.c_str(), r.PredictedSeconds(25e6));
    for (const ReplayVariantResult& v : r.replays) {
      printf(" %9.4f%c", static_cast<double>(v.prediction.PredictedCycles()) / 25e6,
             v.swept ? '*' : ' ');
    }
    printf("\n");
    mrefs_sum += r.replay_mrefs_per_sec;
    if (r.sweep_ran && r.sweep_mrefs_per_sec > 0) {
      sweep_mrefs_sum += r.sweep_mrefs_per_sec;
      ++sweep_runs;
    }
  }
  if (!results.empty()) {
    printf("\ncapture compression %.2fx (first workload), replay fan-out %.1f Mrefs/s (mean)\n",
           results.front().trace_compression, mrefs_sum / static_cast<double>(results.size()));
  }
  if (sweep_runs > 0) {
    printf("sweep pass: %.0f Mrefs/s equivalent (mean; family points x refs / pass wall time)\n",
           sweep_mrefs_sum / static_cast<double>(sweep_runs));
  }
  MaybeWriteRunReport(argc, argv, "bench_figure3", scale, results, &events);
  return 0;
}
