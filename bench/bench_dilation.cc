// §4.1's time dilation: the traced system runs ~15x slower.  We report the
// cycle dilation of the workload's lifetime for a sample of workloads, plus
// the clock scaling check (interrupt counts should roughly agree after the
// 1/15th-rate adjustment).
#include <cstdio>

#include "bench/bench_util.h"
#include "kernel/system_build.h"

using namespace wrl;

int main(int argc, char** argv) {
  double scale = BenchScale(argc, argv);
  printf("=== Time dilation of the traced system (scale %.2f) ===\n", scale);
  printf("%-10s %14s %14s %9s\n", "workload", "untraced cyc", "traced cyc", "dilation");
  const char* names[] = {"sed", "egrep", "espresso", "lisp", "fpppp", "liv"};
  EventRecorder events;
  std::map<std::string, double> metrics;
  double sum = 0;
  int count = 0;
  for (const char* name : names) {
    WorkloadSpec w = PaperWorkload(name, scale);
    SystemConfig base;
    base.program_source = w.source;
    base.program_name = w.name;
    base.files = w.files;

    auto untraced = BuildSystem(base);
    {
      events.SetCycleSource(
          [m = &untraced->machine()]() -> uint64_t { return m->cycles(); });
      EventRecorder::Scope scope(&events, std::string("run.untraced:") + name, "run");
      untraced->Run(3'000'000'000ull);
    }

    SystemConfig traced_cfg = base;
    traced_cfg.tracing = true;
    traced_cfg.clock_period = base.clock_period * 15;
    auto traced = BuildSystem(traced_cfg);
    traced->SetTraceSink([](const uint32_t*, size_t) {});
    {
      events.SetCycleSource(
          [m = &traced->machine()]() -> uint64_t { return m->cycles(); });
      EventRecorder::Scope scope(&events, std::string("run.traced:") + name, "run");
      traced->Run(3'000'000'000ull);
    }

    double dilation = static_cast<double>(traced->ProcessCycles(1)) /
                      static_cast<double>(untraced->ProcessCycles(1));
    printf("%-10s %14llu %14llu %8.1fx\n", name,
           static_cast<unsigned long long>(untraced->ProcessCycles(1)),
           static_cast<unsigned long long>(traced->ProcessCycles(1)), dilation);
    metrics[std::string(name) + ".untraced_cycles"] =
        static_cast<double>(untraced->ProcessCycles(1));
    metrics[std::string(name) + ".traced_cycles"] =
        static_cast<double>(traced->ProcessCycles(1));
    metrics[std::string(name) + ".dilation"] = dilation;
    sum += dilation;
    ++count;
  }
  printf("\nmean dilation: %.1fx (the paper's systems: about fifteen; the clock is\n",
         sum / count);
  printf("scaled to 1/15th rate to compensate, as in 4.1)\n");
  events.SetCycleSource(nullptr);
  metrics["dilation_mean"] = sum / count;
  MaybeWriteMetricsReport(argc, argv, "bench_dilation", scale, metrics, &events);
  return 0;
}
