// Micro-benchmarks (google-benchmark) for the hot primitives of the tracing
// toolchain: assembly, instrumentation, trace parsing, and the simulators.
//
// Like every other bench, --json=PATH (or WRL_JSON) writes a wrlstats/1
// metrics report: micro.<benchmark>.real_ns / .cpu_ns per benchmark, plus
// .items_per_second where the bench reports throughput — the BENCH_*.json
// perf-trajectory record wrlbench_diff consumes.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "bench/bench_util.h"
#include "dataflow/dataflow.h"
#include "epoxie/epoxie.h"
#include "harness/bare_runtime.h"
#include "harness/replay_engine.h"
#include "memsys/memsys.h"
#include "sim/tlb_sim.h"
#include "support/rng.h"
#include "support/strings.h"
#include "sweep/sweep.h"
#include "trace/chunk_ring.h"
#include "trace/parser.h"
#include "trace/trace_archive.h"
#include "trace/trace_log.h"
#include "verify/verify.h"

namespace wrl {
namespace {

const char* kBody = R"(
        .globl main
main:
        addiu $sp, $sp, -16
        sw   $ra, 12($sp)
        la   $t0, data
        li   $t1, 0
        li   $t2, 200
loop:   sll  $t3, $t1, 2
        andi $t3, $t3, 0xfc
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $t4, $t4, $t1
        sw   $t4, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, loop
        nop
        lw   $ra, 12($sp)
        jr   $ra
        addiu $sp, $sp, 16
        .data
data:   .space 256
)";

void BM_Assemble(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Assemble("bench.s", kBody));
  }
}
BENCHMARK(BM_Assemble);

void BM_EpoxieInstrument(benchmark::State& state) {
  ObjectFile obj = Assemble("bench.s", kBody);
  EpoxieConfig config;
  // Pinned to the paper-literal emission so the number stays comparable
  // with the pre-scavenging baseline; the liveness-driven rewrite is
  // measured separately by BM_ScavengeRewrite.
  config.scavenge = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Instrument(obj, config));
  }
}
BENCHMARK(BM_EpoxieInstrument);

// A multi-procedure body — dozens of functions with loops, calls, and
// stolen-register windows — so the interprocedural fixpoint and the
// scavenging rewrite see representative CFG and call-graph structure.
std::string ManyProcBody() {
  std::string src = "        .globl main\nmain:   addiu $sp, $sp, -8\n        sw   $ra, 4($sp)\n";
  for (int i = 0; i < 48; ++i) {
    src += StrFormat("        jal  f%d\n        nop\n", i);
  }
  src += "        lw   $ra, 4($sp)\n        jr   $ra\n        addiu $sp, $sp, 8\n";
  for (int i = 0; i < 48; ++i) {
    src += StrFormat(R"(        .globl f%d
f%d:    la   $t0, data
        li   $t1, %d
l%d:    lw   $t2, 0($t0)
        addu $t2, $t2, $t1
        sw   $t2, 0($t0)
        li   $t8, %d
        addu $t9, $t8, $t2
        sw   $t9, 4($t0)
        addiu $t1, $t1, -1
        bne  $t1, $zero, l%d
        nop
        jr   $ra
        addu $v0, $zero, $zero
)",
                     i, i, i + 2, i, i + 3, i);
  }
  src += "        .data\ndata:   .space 64\n";
  return src;
}

// Interprocedural register liveness (text words resolved per second).
void BM_Liveness(benchmark::State& state) {
  ObjectFile obj = Assemble("bench.s", ManyProcBody());
  uint64_t words = 0;
  for (auto _ : state) {
    LivenessInfo live = ComputeLiveness(obj);
    benchmark::DoNotOptimize(live.live_in.data());
    words += live.live_in.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(words));
}
BENCHMARK(BM_Liveness);

// Full scavenging instrumentation (liveness + rewrite; original text words
// instrumented per second).
void BM_ScavengeRewrite(benchmark::State& state) {
  ObjectFile obj = Assemble("bench.s", ManyProcBody());
  EpoxieConfig config;
  config.scavenge = true;
  uint64_t words = 0;
  for (auto _ : state) {
    InstrumentResult res = Instrument(obj, config);
    benchmark::DoNotOptimize(res.instrumented_text_words);
    words += res.original_text_words;
  }
  state.SetItemsProcessed(static_cast<int64_t>(words));
}
BENCHMARK(BM_ScavengeRewrite);

void BM_VerifyObject(benchmark::State& state) {
  ObjectFile obj = Assemble("bench.s", kBody);
  EpoxieConfig config;
  InstrumentResult res = Instrument(obj, config);
  VerifyOptions options;
  options.epoxie = config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyInstrumentedObject(obj, res, options));
  }
}
BENCHMARK(BM_VerifyObject);

void BM_TracedExecution(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  for (auto _ : state) {
    BareTraceRun run = RunBareTraced(build);
    benchmark::DoNotOptimize(run.trace_words.size());
  }
}
BENCHMARK(BM_TracedExecution);

void BM_UntracedExecution(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  uint64_t instructions = 0;
  for (auto _ : state) {
    RunResult run = RunBareOriginal(build);
    instructions += run.instructions;
    benchmark::DoNotOptimize(run.cycles);
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
}
BENCHMARK(BM_UntracedExecution);

// Raw Step-dispatch throughput: a self-contained spin loop stepped directly,
// with no run-loop bookkeeping, link step, or halt handling in the timing.
void BM_MachineStepLoop(benchmark::State& state) {
  MachineConfig config;
  Machine machine(config);
  // addiu t0, t0, 1; bne t0, zero, -2; nop — an endless counted spin in
  // kseg0, entirely fetch + ALU + branch.
  machine.PhysWrite32(0x1000, 0x25080001);  // addiu $t0, $t0, 1
  machine.PhysWrite32(0x1004, 0x1500fffe);  // bne $t0, $zero, .-4
  machine.PhysWrite32(0x1008, 0x00000000);  // nop
  machine.SetPc(kKseg0 + 0x1000);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      machine.Step();
    }
    benchmark::DoNotOptimize(machine.cycles());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MachineStepLoop);

void BM_TraceParse(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  uint64_t refs = 0;
  for (auto _ : state) {
    TraceParser parser(&build.table);
    parser.SetInitialContext(kKernelPid);
    parser.Feed(run.trace_words);
    parser.Finish();
    refs += parser.stats().refs;
  }
  state.SetItemsProcessed(static_cast<int64_t>(refs));
}
BENCHMARK(BM_TraceParse);

void BM_CacheSim(benchmark::State& state) {
  MemorySystem ms(MemSysConfig{});
  Rng rng(42);
  std::vector<uint32_t> addrs(4096);
  for (auto& a : addrs) {
    a = rng.Below(1u << 22) & ~3u;
  }
  uint64_t now = 0;
  for (auto _ : state) {
    for (uint32_t a : addrs) {
      now += 1 + ms.Load(a, now);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(addrs.size()));
}
BENCHMARK(BM_CacheSim);

// The parser's innermost dependency: one hash lookup per block key.  Built
// with AddObject (reserve + bulk insert), probed with the realistic mix of
// hits and misses the key-validation path sees.
void BM_TraceTableLookup(benchmark::State& state) {
  std::vector<BlockStatic> blocks(4096);
  for (size_t i = 0; i < blocks.size(); ++i) {
    blocks[i].key_offset = static_cast<uint32_t>(i * 32 + 8);
    blocks[i].orig_offset = static_cast<uint32_t>(i * 16);
    blocks[i].num_insts = 4;
    blocks[i].mem_ops = {{1, false, 4}};
  }
  TraceInfoTable table;
  table.AddObject(blocks, 0x00500000, 0x00400000);
  Rng rng(3);
  std::vector<uint32_t> keys(4096);
  for (auto& key : keys) {
    // Three-quarters hits, one quarter misses (the defensive path).
    uint32_t i = rng.Below(static_cast<uint32_t>(blocks.size()));
    key = 0x00500000 + i * 32 + 8 + (rng.Below(4) == 0 ? 4 : 0);
  }
  uint64_t found = 0;
  for (auto _ : state) {
    for (uint32_t key : keys) {
      found += table.Find(key) != nullptr;
    }
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_TraceTableLookup);

// Capture-once/replay-many, end to end on a real trace: pack the traced
// run's words into a TraceLog, parse once, replay the materialized stream
// through a fresh TLB simulator in kRefBatchCapacity batches.
void BM_ReplayBatched(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));
  engine.Parse();
  const std::vector<TraceRef>& refs = engine.refs();
  uint64_t delivered = 0;
  for (auto _ : state) {
    TlbSimulator tlb;
    for (size_t off = 0; off < refs.size(); off += kRefBatchCapacity) {
      size_t count = std::min(kRefBatchCapacity, refs.size() - off);
      tlb.OnRefBatch(refs.data() + off, count);
    }
    delivered += refs.size();
    benchmark::DoNotOptimize(tlb.stats().utlb_misses);
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_ReplayBatched);

// The pipelined trace transport end to end: a real trace pushed through the
// SPSC ring in drain-sized chunks while the consumer thread runs the parser.
// Items are trace words, so this tracks the transport's sustainable drain
// bandwidth (ring copy + handoff + parse), the quantity that bounds how far
// the traced machine can outrun the analysis.
void BM_PipelineDrain(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  const std::vector<uint32_t>& words = run.trace_words;
  constexpr size_t kChunkWords = 2048;
  uint64_t pushed = 0;
  for (auto _ : state) {
    TraceParser parser(&build.table);
    parser.SetInitialContext(kKernelPid);
    TracePipeline pipeline([&parser](const uint32_t* w, size_t n) { parser.Feed(w, n); });
    for (size_t off = 0; off < words.size(); off += kChunkWords) {
      size_t count = std::min(kChunkWords, words.size() - off);
      pipeline.Produce(words.data() + off, count);
    }
    pipeline.Finish();
    parser.Finish();
    pushed += words.size();
    benchmark::DoNotOptimize(parser.stats().refs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(pushed));
}
BENCHMARK(BM_PipelineDrain);

// Raw TraceLog unpack throughput: varint+delta decode of a packed multi-chunk
// capture into trace words, the per-chunk work the parallel decoder fans out.
void BM_TraceLogDecode(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  TraceLog log;
  constexpr size_t kChunkWords = 2048;
  for (size_t off = 0; off < run.trace_words.size(); off += kChunkWords) {
    size_t count = std::min(kChunkWords, run.trace_words.size() - off);
    log.Append(run.trace_words.data() + off, count);
  }
  uint64_t decoded = 0;
  for (auto _ : state) {
    uint64_t words = 0;
    log.Replay([&](const uint32_t*, size_t n) { words += n; });
    decoded += words;
    benchmark::DoNotOptimize(words);
  }
  state.SetItemsProcessed(static_cast<int64_t>(decoded));
}
BENCHMARK(BM_TraceLogDecode);

// A scratch path under /tmp for the archive benches; each bench writes,
// reads, and removes its own file so concurrent invocations don't collide.
std::string BenchArchivePath(const char* tag) {
  return StrFormat("/tmp/wrl_bench_%s_%d.wrl", tag, static_cast<int>(getpid()));
}

// Full archive write path on a real trace: delta+varint chunk encode, CRC,
// and the per-chunk flush to disk.  Items are trace words persisted, so this
// tracks the sustainable tee bandwidth RunExperiment's archive_path adds to
// a live capture.
void BM_ArchiveWrite(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  const std::vector<uint32_t>& words = run.trace_words;
  constexpr size_t kChunkWords = 2048;
  std::string path = BenchArchivePath("write");
  uint64_t written = 0;
  for (auto _ : state) {
    ArchiveWriter writer(path, {{"workload", "bench"}});
    for (size_t off = 0; off < words.size(); off += kChunkWords) {
      size_t count = std::min(kChunkWords, words.size() - off);
      writer.Append(words.data() + off, count);
    }
    writer.Finalize();
    written += writer.words();
    benchmark::DoNotOptimize(writer.bytes_written());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(written));
}
BENCHMARK(BM_ArchiveWrite);

// Archive decode throughput off the mmap'd file: per-chunk CRC check plus
// the bounded varint+delta decode — the per-chunk work the windowed
// parallel replay fans out.  Directly comparable to BM_TraceLogDecode; the
// delta is the cost of checksumming and untrusted-input bounds checks.
void BM_ArchiveDecode(benchmark::State& state) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  constexpr size_t kChunkWords = 2048;
  std::string path = BenchArchivePath("decode");
  {
    ArchiveWriter writer(path, {{"workload", "bench"}});
    for (size_t off = 0; off < run.trace_words.size(); off += kChunkWords) {
      size_t count = std::min(kChunkWords, run.trace_words.size() - off);
      writer.Append(run.trace_words.data() + off, count);
    }
    writer.Finalize();
  }
  ArchiveReader reader(path);
  uint64_t decoded = 0;
  for (auto _ : state) {
    uint64_t words = 0;
    reader.Replay([&](const uint32_t*, size_t n) { words += n; });
    decoded += words;
    benchmark::DoNotOptimize(words);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(decoded));
}
BENCHMARK(BM_ArchiveDecode);

// The sweep engine's one pass over a realistic mixed stream, pricing an
// 8-point I-cache family, an 8-point D-cache family, and a 64-entry TLB
// curve at once.  Items are (refs × family points): the equivalent-replay
// rate, directly comparable to BM_ReplayBatched's per-config items rate.
void BM_SweepSim(benchmark::State& state) {
  Rng rng(19);
  std::vector<TraceRef> refs(4096);
  for (size_t i = 0; i < refs.size(); ++i) {
    TraceRef r{};
    r.kind = (i % 4 == 3) ? TraceRef::kLoad : TraceRef::kIfetch;
    r.bytes = 4;
    r.pid = 1;
    r.addr = rng.Below(1u << 24);
    refs[i] = r;
  }
  SweepConfig config;
  config.icache.push_back({16, 4096, 512 * 1024});
  config.dcache.push_back({4, 4096, 512 * 1024});
  config.tlb_max_entries = 64;
  uint64_t points = 0;
  {
    SweepEngine probe(config);
    probe.OnRefBatch(refs.data(), refs.size());
    points = probe.Finish().family_points;
  }
  for (auto _ : state) {
    SweepEngine sweep(config);
    sweep.OnRefBatch(refs.data(), refs.size());
    benchmark::DoNotOptimize(sweep.Finish().icache.front().misses);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(refs.size() * points));
}
BENCHMARK(BM_SweepSim);

// The Fenwick-tree stack-distance kernel alone, on a working set large
// enough to exercise timestamp-window compaction.
void BM_StackDistance(benchmark::State& state) {
  Rng rng(29);
  std::vector<uint64_t> keys(4096);
  for (auto& key : keys) {
    key = rng.Below(600);
  }
  StackDistanceProfiler profiler;
  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint64_t key : keys) {
      sum += profiler.Access(key);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_StackDistance);

void BM_TlbSim(benchmark::State& state) {
  TlbSimulator tlb;
  Rng rng(7);
  std::vector<TraceRef> refs(4096);
  for (auto& r : refs) {
    r = {TraceRef::kLoad, rng.Below(1u << 26), 4, 1, false, false};
  }
  for (auto _ : state) {
    for (const TraceRef& r : refs) {
      benchmark::DoNotOptimize(tlb.OnRef(r));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(refs.size()));
}
BENCHMARK(BM_TlbSim);

// Console output as usual, but every finished run is also captured so the
// --json report can be emitted afterwards.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      runs_.push_back(run);
    }
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

}  // namespace
}  // namespace wrl

int main(int argc, char** argv) {
  std::string json_path = wrl::BenchJsonPath(argc, argv);
  // Strip the wrl-side flags before google-benchmark sees (and rejects)
  // them; everything else passes through to benchmark::Initialize.
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      ++i;
    } else if (arg.rfind("--json=", 0) != 0) {
      args.push_back(argv[i]);
    }
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) {
    return 1;
  }
  wrl::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    std::map<std::string, double> metrics;
    for (const auto& run : reporter.runs()) {
      if (run.error_occurred) {
        continue;
      }
      std::string name = run.benchmark_name();
      for (char& c : name) {
        if (c == '/' || c == ':') {
          c = '_';
        }
      }
      metrics["micro." + name + ".real_ns"] = run.GetAdjustedRealTime();
      metrics["micro." + name + ".cpu_ns"] = run.GetAdjustedCPUTime();
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        metrics["micro." + name + ".items_per_second"] = items->second;
      }
    }
    try {
      wrl::WriteMetricsReport(json_path, "bench_micro", metrics, {});
    } catch (const wrl::Error& e) {
      fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    fprintf(stderr, "wrote metrics report to %s\n", json_path.c_str());
  }
  return 0;
}
