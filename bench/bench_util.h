// Shared plumbing for the experiment benches: scale handling and suite
// caching so a single binary regenerating one table doesn't pay twice.
#ifndef WRLTRACE_BENCH_BENCH_UTIL_H_
#define WRLTRACE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "workloads/workloads.h"

namespace wrl {

// Workload scale for bench runs: --scale=X or WRL_SCALE env (default 0.2,
// chosen so the full two-personality suite completes in a few minutes).
inline double BenchScale(int argc, char** argv) {
  double scale = 0.2;
  if (const char* env = std::getenv("WRL_SCALE")) {
    scale = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + 8);
    }
  }
  return scale <= 0 ? 0.2 : scale;
}

inline std::vector<ExperimentResult> RunPersonalitySuite(Personality personality, double scale) {
  ExperimentOptions options;
  options.personality = personality;
  std::vector<ExperimentResult> results;
  for (const WorkloadSpec& w : PaperWorkloads(scale)) {
    fprintf(stderr, "  running %-9s (%s)...\n", w.name.c_str(),
            personality == Personality::kUltrix ? "ultrix" : "mach");
    results.push_back(RunExperiment(w, options));
  }
  return results;
}

}  // namespace wrl

#endif  // WRLTRACE_BENCH_BENCH_UTIL_H_
