// Shared plumbing for the experiment benches: scale handling, the --json
// report emitter, and suite running with loud warning surfacing.
#ifndef WRLTRACE_BENCH_BENCH_UTIL_H_
#define WRLTRACE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "stats/events.h"
#include "support/error.h"
#include "workloads/workloads.h"

namespace wrl {

// Workload scale for bench runs: --scale=X or WRL_SCALE env, falling back
// to `fallback` when neither is given.
inline double BenchScaleOr(int argc, char** argv, double fallback) {
  double scale = fallback;
  if (const char* env = std::getenv("WRL_SCALE")) {
    scale = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + 8);
    }
  }
  return scale <= 0 ? fallback : scale;
}

// The standard bench default: 0.2, chosen so the full two-personality suite
// completes in a few minutes.
inline double BenchScale(int argc, char** argv) { return BenchScaleOr(argc, argv, 0.2); }

// Worker threads for suite runs: --jobs=N, --jobs N, or WRL_JOBS env
// (default 1 = serial).  Parallel runs also overlap each experiment's
// measured/traced pair; results and reports are identical either way.
inline unsigned BenchJobs(int argc, char** argv) {
  long jobs = 1;
  if (const char* env = std::getenv("WRL_JOBS")) {
    jobs = std::atol(env);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atol(arg.c_str() + 7);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atol(argv[i + 1]);
    }
  }
  return jobs < 1 ? 1u : static_cast<unsigned>(jobs);
}

// Live progress heartbeat: --progress or WRL_PROGRESS env (default off).
// The heartbeat writes only to stderr, so reports are unaffected.
inline bool BenchProgress(int argc, char** argv) {
  bool progress = false;
  if (const char* env = std::getenv("WRL_PROGRESS")) {
    progress = std::strcmp(env, "0") != 0;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--progress") == 0) {
      progress = true;
    }
  }
  return progress;
}

// Report destination: --json=PATH, --json PATH, or WRL_JSON env.  Empty
// when no machine-readable report was requested.
inline std::string BenchJsonPath(int argc, char** argv) {
  std::string path;
  if (const char* env = std::getenv("WRL_JSON")) {
    path = env;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      path = argv[i + 1];
    }
  }
  return path;
}

// Runs the full paper-workload suite for one personality.  `base` carries
// any extra experiment options (replay variants, batch mode, ...);
// personality/events/jobs are overwritten from the explicit arguments.
inline std::vector<ExperimentResult> RunPersonalitySuite(Personality personality, double scale,
                                                         EventRecorder* events, unsigned jobs,
                                                         ExperimentOptions options) {
  options.personality = personality;
  options.events = events;
  const std::vector<WorkloadSpec> workloads = PaperWorkloads(scale);
  std::vector<ExperimentResult> results;
  bool progress = options.progress;
  if (const char* env = std::getenv("WRL_PROGRESS")) {
    progress = progress || std::strcmp(env, "0") != 0;
  }
  if (jobs <= 1) {
    if (progress) {
      // Route through RunSuite so the heartbeat's monitor thread runs even
      // for serial suites.
      results = RunSuite(workloads, options);
      for (const ExperimentResult& r : results) {
        PrintResultWarnings(r, stderr);
      }
      return results;
    }
    for (const WorkloadSpec& w : workloads) {
      fprintf(stderr, "  running %-9s (%s)...\n", w.name.c_str(),
              personality == Personality::kUltrix ? "ultrix" : "mach");
      results.push_back(RunExperiment(w, options));
      PrintResultWarnings(results.back(), stderr);
    }
    return results;
  }
  options.jobs = jobs;
  options.parallel_pair = true;
  fprintf(stderr, "  running %zu workloads (%s) on %u workers...\n", workloads.size(),
          personality == Personality::kUltrix ? "ultrix" : "mach", jobs);
  results = RunSuite(workloads, options);
  for (const ExperimentResult& r : results) {
    PrintResultWarnings(r, stderr);
  }
  return results;
}

inline std::vector<ExperimentResult> RunPersonalitySuite(Personality personality, double scale,
                                                         EventRecorder* events = nullptr,
                                                         unsigned jobs = 1) {
  return RunPersonalitySuite(personality, scale, events, jobs, ExperimentOptions());
}

// Emits the full run report when --json was requested.  Returns true when a
// report was written.
inline bool MaybeWriteRunReport(int argc, char** argv, const char* tool, double scale,
                                const std::vector<ExperimentResult>& results,
                                const EventRecorder* events = nullptr) {
  std::string path = BenchJsonPath(argc, argv);
  if (path.empty()) {
    return false;
  }
  RunReportOptions options;
  options.tool = tool;
  options.scale = scale;
  static const std::vector<TimelineEvent> kNoEvents;
  try {
    WriteRunReport(path, results, events != nullptr ? events->events() : kNoEvents, options);
  } catch (const Error& e) {
    fprintf(stderr, "error: %s\n", e.what());
    std::exit(1);
  }
  fprintf(stderr, "wrote run report to %s\n", path.c_str());
  return true;
}

// Emits the flat metrics-only report when --json was requested.
inline bool MaybeWriteMetricsReport(int argc, char** argv, const char* tool, double scale,
                                    const std::map<std::string, double>& metrics,
                                    const EventRecorder* events = nullptr) {
  std::string path = BenchJsonPath(argc, argv);
  if (path.empty()) {
    return false;
  }
  static const std::vector<TimelineEvent> kNoEvents;
  try {
    WriteMetricsReport(path, tool, metrics, events != nullptr ? events->events() : kNoEvents,
                       scale);
  } catch (const Error& e) {
    fprintf(stderr, "error: %s\n", e.what());
    std::exit(1);
  }
  fprintf(stderr, "wrote metrics report to %s\n", path.c_str());
  return true;
}

}  // namespace wrl

#endif  // WRLTRACE_BENCH_BENCH_UTIL_H_
